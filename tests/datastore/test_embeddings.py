"""Tests for the topic-mixture embedding generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann.kmeans import kmeans
from repro.datastore.embeddings import TopicModel, make_corpus, zipf_weights


class TestZipfWeights:
    def test_sums_to_one(self):
        assert np.isclose(zipf_weights(10).sum(), 1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(10)
        assert (np.diff(w) <= 0).all()

    def test_default_imbalance_is_paper_2x(self):
        w = zipf_weights(10)
        assert w.max() / w.min() == pytest.approx(2.0, rel=0.01)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    @given(st.integers(1, 50), st.floats(0.0, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_valid_distribution_for_any_exponent(self, n, exponent):
        w = zipf_weights(n, exponent=exponent)
        assert np.isclose(w.sum(), 1.0)
        assert (w > 0).all()


class TestTopicModel:
    def test_centers_unit_norm(self):
        model = TopicModel.create(n_topics=6, dim=32)
        assert np.allclose(np.linalg.norm(model.centers, axis=1), 1.0, atol=1e-5)

    def test_documents_unit_norm(self):
        model = TopicModel.create(n_topics=6, dim=32)
        emb, _ = model.sample_documents(100)
        assert np.allclose(np.linalg.norm(emb, axis=1), 1.0, atol=1e-5)

    def test_documents_closer_to_own_topic(self):
        model = TopicModel.create(n_topics=8, dim=64, spread=0.3, seed=3)
        emb, topics = model.sample_documents(300)
        sims = emb @ model.centers.T
        assigned = sims.argmax(axis=1)
        assert (assigned == topics).mean() > 0.9

    def test_topic_distribution_follows_weights(self):
        model = TopicModel.create(n_topics=5, dim=16, weight_exponent=1.0, seed=4)
        _, topics = model.sample_documents(5000)
        counts = np.bincount(topics, minlength=5)
        assert counts[0] > counts[4] * 1.5

    def test_query_spread_override(self):
        model = TopicModel.create(n_topics=4, dim=32, seed=5)
        tight, t_topics = model.sample_queries(200, query_spread=0.05)
        loose, l_topics = model.sample_queries(200, query_spread=0.8)
        tight_sim = (tight @ model.centers.T)[np.arange(200), t_topics].mean()
        loose_sim = (loose @ model.centers.T)[np.arange(200), l_topics].mean()
        assert tight_sim > loose_sim

    def test_custom_topic_weights_validated(self):
        model = TopicModel.create(n_topics=4, dim=8)
        with pytest.raises(ValueError, match="sum to 1"):
            model.sample_queries(10, topic_weights=np.array([0.5, 0.5, 0.5, 0.5]))

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError, match="matching length"):
            TopicModel(
                centers=np.zeros((3, 4), dtype=np.float32),
                weights=np.array([0.5, 0.5]),
                spread=0.1,
            )

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError, match="spread"):
            TopicModel.create(n_topics=2, dim=4, spread=-0.1)


class TestMakeCorpus:
    def test_shapes(self):
        corpus = make_corpus(500, n_topics=5, dim=24)
        assert corpus.embeddings.shape == (500, 24)
        assert corpus.topics.shape == (500,)
        assert len(corpus) == 500
        assert corpus.dim == 24

    def test_deterministic_per_seed(self):
        a = make_corpus(100, seed=9)
        b = make_corpus(100, seed=9)
        assert np.array_equal(a.embeddings, b.embeddings)

    def test_different_seeds_differ(self):
        a = make_corpus(100, seed=1)
        b = make_corpus(100, seed=2)
        assert not np.array_equal(a.embeddings, b.embeddings)

    def test_kmeans_recovers_topic_structure(self):
        # The property Hermes depends on: K-means clusters ≈ latent topics.
        corpus = make_corpus(2000, n_topics=6, dim=48, spread=0.3, seed=10)
        result = kmeans(corpus.embeddings, 6, seed=0)
        # Each K-means cluster should be dominated by one latent topic.
        dominant = []
        for cid in range(6):
            members = corpus.topics[result.assignments == cid]
            if len(members):
                dominant.append(np.bincount(members).max() / len(members))
        assert np.mean(dominant) > 0.8
