"""Tests for the chunk datastore and prompt augmentation."""

import numpy as np
import pytest

from repro.datastore.chunkstore import ChunkStore, augment_query
from repro.datastore.corpus import Chunk


def make_chunks(n=5):
    return [
        Chunk(chunk_id=i, doc_id=i, topic=0, tokens=np.array([i * 10, i * 10 + 1]))
        for i in range(n)
    ]


@pytest.fixture()
def store():
    return ChunkStore(make_chunks())


class TestChunkStore:
    def test_len(self, store):
        assert len(store) == 5

    def test_get(self, store):
        assert store.get(3).chunk_id == 3

    def test_get_unknown_raises(self, store):
        with pytest.raises(KeyError):
            store.get(99)

    def test_get_negative_raises(self, store):
        with pytest.raises(KeyError):
            store.get(-1)

    def test_get_many_skips_padding(self, store):
        chunks = store.get_many(np.array([0, -1, 2]))
        assert [c.chunk_id for c in chunks] == [0, 2]

    def test_texts_render(self, store):
        assert store.texts(np.array([1])) == ["tok10 tok11"]

    def test_noncontiguous_ids_rejected(self):
        bad = make_chunks()
        bad[2] = Chunk(chunk_id=7, doc_id=2, topic=0, tokens=np.array([1]))
        with pytest.raises(ValueError, match="contiguous"):
            ChunkStore(bad)


class TestAugmentation:
    def test_prepends_top_context(self, store):
        aug = augment_query("what is tok10?", store, np.array([1, 2, 3]), top_n=1)
        assert aug.context_texts == ("tok10 tok11",)
        assert aug.prompt().endswith("what is tok10?")
        assert aug.prompt().startswith("tok10 tok11")

    def test_top_n_contexts(self, store):
        aug = augment_query("q", store, np.array([0, 1, 2]), top_n=2)
        assert len(aug.context_texts) == 2

    def test_padding_ids_skipped(self, store):
        aug = augment_query("q", store, np.array([-1, 4]), top_n=2)
        assert aug.context_texts == ("tok40 tok41",)

    def test_rejects_nonpositive_top_n(self, store):
        with pytest.raises(ValueError):
            augment_query("q", store, np.array([0]), top_n=0)
