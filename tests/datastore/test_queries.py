"""Tests for the synthetic query workloads."""

import numpy as np
import pytest

from repro.datastore.embeddings import TopicModel
from repro.datastore.queries import (
    natural_questions_queries,
    trivia_queries,
    uniform_random_queries,
)


@pytest.fixture(scope="module")
def model():
    return TopicModel.create(n_topics=10, dim=32, seed=0)


class TestTrivia:
    def test_shape_and_name(self, model):
        qs = trivia_queries(model, 64)
        assert qs.embeddings.shape == (64, 32)
        assert len(qs) == 64
        assert qs.name == "triviaqa-like"

    def test_topics_roughly_uniform(self, model):
        qs = trivia_queries(model, 2000)
        counts = np.bincount(qs.topics, minlength=10)
        assert counts.max() / counts.min() < 1.6

    def test_queries_align_with_their_topic(self, model):
        qs = trivia_queries(model, 200)
        sims = qs.embeddings @ model.centers.T
        assert (sims.argmax(axis=1) == qs.topics).mean() > 0.9

    def test_deterministic(self, model):
        a = trivia_queries(model, 16, seed=3)
        b = trivia_queries(model, 16, seed=3)
        assert np.array_equal(a.embeddings, b.embeddings)


class TestNaturalQuestions:
    def test_popularity_skew(self, model):
        qs = natural_questions_queries(model, 4000)
        counts = np.bincount(qs.topics, minlength=10).astype(float)
        assert counts.max() / max(counts.min(), 1.0) > 2.0

    def test_popularity_independent_of_topic_index(self, model):
        # The hot topic should not always be topic 0 (it's shuffled).
        qs = natural_questions_queries(model, 4000, seed=11)
        counts = np.bincount(qs.topics, minlength=10)
        assert counts.argmax() != 0 or counts.argsort()[-2] != 1


class TestUniformRandom:
    def test_no_topic_labels(self):
        qs = uniform_random_queries(32, 20)
        assert (qs.topics == -1).all()

    def test_unit_norm(self):
        qs = uniform_random_queries(32, 20)
        assert np.allclose(np.linalg.norm(qs.embeddings, axis=1), 1.0, atol=1e-5)


class TestBatching:
    def test_batches_cover_all(self, model):
        qs = trivia_queries(model, 70)
        batches = qs.batches(32)
        assert [len(b) for b in batches] == [32, 32, 6]

    def test_rejects_bad_batch_size(self, model):
        qs = trivia_queries(model, 8)
        with pytest.raises(ValueError):
            qs.batches(0)
