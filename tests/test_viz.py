"""Tests for the terminal plotting helpers."""

import pytest

from repro.metrics.reporting import FigureResult, Series
from repro.viz import bar_chart, heatmap, line_chart, render_figure


@pytest.fixture()
def two_series():
    return [
        Series(name="a", x=[1, 2, 3], y=[1.0, 2.0, 3.0]),
        Series(name="b", x=[1, 2, 3], y=[3.0, 2.0, 1.0]),
    ]


class TestLineChart:
    def test_contains_markers_and_legend(self, two_series):
        out = line_chart(two_series, title="T")
        assert "T" in out
        assert "o a" in out and "x b" in out
        assert "o" in out and "x" in out

    def test_axis_labels_present(self, two_series):
        out = line_chart(two_series)
        assert "1" in out and "3" in out

    def test_log_axes(self):
        s = [Series(name="s", x=[1e8, 1e10, 1e12], y=[1.0, 10.0, 100.0])]
        out = line_chart(s, logx=True, logy=True)
        assert "1e+08" in out or "1e+8" in out or "100" in out

    def test_log_rejects_nonpositive(self):
        s = [Series(name="s", x=[0.0, 1.0], y=[1.0, 2.0])]
        with pytest.raises(ValueError):
            line_chart(s, logx=True)

    def test_flat_series_centered(self):
        s = [Series(name="s", x=[1, 2], y=[5.0, 5.0])]
        out = line_chart(s)
        assert "o" in out

    def test_validation(self, two_series):
        with pytest.raises(ValueError):
            line_chart([])
        with pytest.raises(ValueError):
            line_chart(two_series, width=2)


class TestBarChart:
    def test_proportional_bars(self):
        out = bar_chart(["x", "yy"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 2 * lines[0].count("█")

    def test_labels_aligned(self):
        out = bar_chart(["short", "a-much-longer-label"], [1.0, 1.0])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [0.0])


class TestHeatmap:
    def test_extremes_use_extreme_shades(self):
        out = heatmap([[0.0, 1.0]], row_labels=["r"], col_labels=["a", "b"])
        assert "█" in out
        assert "scale:" in out

    def test_row_and_col_labels(self):
        out = heatmap(
            [[1, 2], [3, 4]], row_labels=["r1", "r2"], col_labels=["c1", "c2"]
        )
        assert "r1" in out and "r2" in out
        assert "c1" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            heatmap([])
        with pytest.raises(ValueError):
            heatmap([[1, 2], [3]])


class TestRenderFigure:
    def test_chart_and_table_combined(self, two_series):
        fig = FigureResult(figure_id="figX", description="demo")
        fig.series.extend(two_series)
        out = render_figure(fig)
        assert "figX" in out
        assert "-- a" in out  # the data table follows the chart
