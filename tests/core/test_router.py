"""Tests for cluster-routing strategies."""

import numpy as np
import pytest

from repro.core.router import AllRouter, CentroidRouter, SampledRouter


class TestSampledRouter:
    def test_shape(self, clustered, small_queries):
        decision = SampledRouter().route(small_queries.embeddings, clustered, 3)
        assert decision.clusters.shape == (len(small_queries), 3)
        assert decision.scores.shape == (len(small_queries), 10)
        assert decision.fanout == 3

    def test_clusters_ranked_by_sampled_score(self, clustered, small_queries):
        decision = SampledRouter().route(small_queries.embeddings, clustered, 10)
        rows = np.arange(len(small_queries))[:, None]
        ranked_scores = decision.scores[rows, decision.clusters]
        assert (np.diff(ranked_scores, axis=1) >= -1e-5).all()

    def test_top_cluster_matches_query_topic(self, clustered, small_corpus, small_queries):
        # Routing should usually pick the shard holding the query's topic.
        decision = SampledRouter().route(small_queries.embeddings, clustered, 1)
        hits = 0
        for qi, topic in enumerate(small_queries.topics):
            shard = clustered.shards[int(decision.clusters[qi, 0])]
            shard_topics = small_corpus.topics[shard.global_ids]
            if np.bincount(shard_topics, minlength=10).argmax() == topic:
                hits += 1
        assert hits / len(small_queries) > 0.8

    def test_m_validated(self, clustered, small_queries):
        with pytest.raises(ValueError):
            SampledRouter().route(small_queries.embeddings, clustered, 0)
        # Oversized fan-out clamps to the number of (alive) clusters rather
        # than erroring, so failure handling can always request "everything".
        decision = SampledRouter().route(small_queries.embeddings, clustered, 11)
        assert decision.fanout == clustered.n_clusters

    def test_custom_sample_nprobe_used(self, clustered, small_queries):
        low = SampledRouter(sample_nprobe=1).route(
            small_queries.embeddings, clustered, 10
        )
        high = SampledRouter(sample_nprobe=64).route(
            small_queries.embeddings, clustered, 10
        )
        # Deeper sampling can only improve (lower) the best sampled distances.
        assert (high.scores.min(axis=1) <= low.scores.min(axis=1) + 1e-5).all()


class TestCentroidRouter:
    def test_ranks_by_centroid_similarity(self, clustered, small_queries):
        decision = CentroidRouter().route(small_queries.embeddings, clustered, 10)
        from repro.ann.distances import pairwise_distance

        expected = pairwise_distance(
            small_queries.embeddings, clustered.centroids(), "ip"
        )
        rows = np.arange(len(small_queries))[:, None]
        ranked = expected[rows, decision.clusters]
        assert (np.diff(ranked, axis=1) >= -1e-5).all()

    def test_agrees_with_sampling_on_clean_queries(self, clustered, small_queries):
        # On topically clean queries the two routers mostly pick the same top
        # cluster; document sampling only pulls ahead on boundary queries.
        sampled = SampledRouter().route(small_queries.embeddings, clustered, 1)
        centroid = CentroidRouter().route(small_queries.embeddings, clustered, 1)
        agreement = (sampled.clusters[:, 0] == centroid.clusters[:, 0]).mean()
        assert agreement > 0.6


class TestAllRouter:
    def test_routes_everywhere(self, clustered, small_queries):
        decision = AllRouter().route(small_queries.embeddings, clustered, 3)
        assert decision.fanout == clustered.n_clusters
        for row in decision.clusters:
            assert set(row) == set(range(10))
