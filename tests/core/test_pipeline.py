"""Tests for the HermesSystem end-to-end facade."""

import numpy as np
import pytest

from repro.core.pipeline import HermesSystem
from repro.datastore.chunkstore import ChunkStore
from repro.datastore.corpus import CorpusGenerator, TokenVocabulary, chunk_documents
from repro.datastore.encoder import SyntheticEncoder
from repro.llm.generation import GenerationConfig
from repro.perfmodel.aggregate import DVFSPolicy


@pytest.fixture(scope="module")
def system(small_corpus, clustered):
    return HermesSystem(
        small_corpus.embeddings,
        total_tokens=100e9,
        datastore=clustered,
        generation=GenerationConfig(batch=32),
    )


class TestRetrieve:
    def test_real_ids_with_modelled_cost(self, system, small_queries):
        outcome = system.retrieve(small_queries.embeddings[:8], k=5)
        assert outcome.search.ids.shape == (8, 5)
        assert outcome.latency_s > 0
        assert outcome.energy_j > 0

    def test_cost_conversion(self, system, small_queries):
        outcome = system.retrieve(small_queries.embeddings[:4])
        cost = outcome.cost()
        assert cost.latency_s == outcome.latency_s

    def test_text_queries_need_encoder(self, system):
        with pytest.raises(ValueError, match="encoder"):
            system.retrieve(["what is tok5?"])


class TestServe:
    def test_generation_attached(self, system, small_queries):
        response = system.serve(small_queries.embeddings[:8])
        assert response.generation.e2e_s > response.generation.ttft_s
        assert response.generation.config.batch == 8

    def test_retrieval_cost_flows_into_timeline(self, system, small_queries):
        response = system.serve(small_queries.embeddings[:8])
        n_strides = response.generation.config.n_strides
        assert response.generation.retrieval_s == pytest.approx(
            response.retrieval.latency_s * n_strides
        )


class TestDescribe:
    def test_fields(self, system):
        info = system.describe()
        assert info["clusters"] == 10
        assert info["clusters_to_search"] == 3
        assert "Gemma2" in info["inference_model"]

    def test_memory_positive(self, system):
        assert system.memory_bytes() > 0


class TestTextPath:
    def test_full_text_pipeline(self):
        """Raw text in, augmented prompt out — the complete Fig. 3 flow."""
        vocab = TokenVocabulary(n_topics=4, pool_size=150, common_size=60)
        gen = CorpusGenerator(vocab, doc_tokens=96, topical_fraction=0.8, seed=0)
        docs = gen.generate(150)
        chunks = chunk_documents(docs, chunk_tokens=48)
        encoder = SyntheticEncoder(dim=32, seed=0)
        embeddings = encoder.encode_chunks(chunks)

        from repro.core.config import HermesConfig

        system = HermesSystem(
            embeddings,
            total_tokens=1e9,
            config=HermesConfig(n_clusters=4, clusters_to_search=2),
            chunk_store=ChunkStore(chunks),
            encoder=encoder,
        )
        query_text = " ".join(f"tok{t}" for t in vocab.topic_pool(1)[:6])
        response = system.serve([query_text] * 4)
        assert response.augmented is not None
        prompt = response.augmented[0].prompt()
        assert prompt.endswith(query_text)
        # The retrieved context should be topically aligned: mostly topic-1
        # pool tokens.
        context = response.augmented[0].context_texts[0]
        context_topics = [
            vocab.topic_of_token(int(w[3:])) for w in context.split()
        ]
        topical = [t for t in context_topics if t >= 0]
        assert topical and (np.bincount(topical, minlength=4).argmax() == 1)


class TestDVFSIntegration:
    def test_enhanced_dvfs_system(self, small_corpus, clustered, small_queries):
        system = HermesSystem(
            small_corpus.embeddings,
            total_tokens=20e9,
            datastore=clustered,
            dvfs=DVFSPolicy.ENHANCED,
        )
        outcome = system.retrieve(small_queries.embeddings[:8])
        assert outcome.latency_s > 0


class TestSystemPersistence:
    def test_save_load_roundtrip(self, small_corpus, clustered, small_queries, tmp_path):
        system = HermesSystem(
            small_corpus.embeddings, total_tokens=50e9, datastore=clustered
        )
        system.save(tmp_path / "deploy")
        loaded = HermesSystem.load(tmp_path / "deploy")
        q = small_queries.embeddings[:8]
        assert np.array_equal(
            system.retrieve(q).search.ids, loaded.retrieve(q).search.ids
        )
        assert loaded.scheduler.total_tokens == 50e9

    def test_load_with_overrides(self, small_corpus, clustered, tmp_path):
        system = HermesSystem(
            small_corpus.embeddings, total_tokens=50e9, datastore=clustered
        )
        system.save(tmp_path / "deploy")
        loaded = HermesSystem.load(tmp_path / "deploy", total_tokens=1e12)
        assert loaded.scheduler.total_tokens == 1e12
