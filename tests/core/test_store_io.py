"""Tests for clustered-datastore persistence."""

import numpy as np
import pytest

from repro.core.store_io import load_datastore, save_datastore
from repro.core.hierarchical import HermesSearcher


class TestDatastoreRoundTrip:
    def test_structure_preserved(self, clustered, tmp_path):
        save_datastore(clustered, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        assert loaded.n_clusters == clustered.n_clusters
        assert loaded.ntotal == clustered.ntotal
        assert np.array_equal(loaded.assignments, clustered.assignments)
        assert np.array_equal(loaded.sizes(), clustered.sizes())
        assert loaded.config == clustered.config

    def test_search_identical(self, clustered, small_queries, tmp_path):
        save_datastore(clustered, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        original = HermesSearcher(clustered).search(small_queries.embeddings[:8])
        reloaded = HermesSearcher(loaded).search(small_queries.embeddings[:8])
        assert np.array_equal(original.ids, reloaded.ids)
        assert np.allclose(original.distances, reloaded.distances, atol=1e-5)

    def test_centroids_preserved(self, clustered, tmp_path):
        save_datastore(clustered, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        assert np.allclose(loaded.centroids(), clustered.centroids())

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_datastore(tmp_path / "nothing")
