"""Tests for clustered-datastore persistence."""

import json
import threading

import numpy as np
import pytest

import repro.core.store_io as store_io
from repro.core.store_io import _atomic_write, load_datastore, save_datastore
from repro.core.clustering import cluster_datastore
from repro.core.config import HermesConfig
from repro.core.hierarchical import HermesSearcher
from repro.datastore.embeddings import make_corpus


@pytest.fixture()
def mutable_store():
    """A small private datastore safe to mutate (the shared one is not)."""
    corpus = make_corpus(600, n_topics=4, dim=32, seed=21)
    config = HermesConfig(n_clusters=3, clusters_to_search=3, nlist=8)
    return cluster_datastore(corpus.embeddings, config)


class TestDatastoreRoundTrip:
    def test_structure_preserved(self, clustered, tmp_path):
        save_datastore(clustered, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        assert loaded.n_clusters == clustered.n_clusters
        assert loaded.ntotal == clustered.ntotal
        assert np.array_equal(loaded.assignments, clustered.assignments)
        assert np.array_equal(loaded.sizes(), clustered.sizes())
        assert loaded.config == clustered.config

    def test_search_identical(self, clustered, small_queries, tmp_path):
        save_datastore(clustered, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        original = HermesSearcher(clustered).search(small_queries.embeddings[:8])
        reloaded = HermesSearcher(loaded).search(small_queries.embeddings[:8])
        assert np.array_equal(original.ids, reloaded.ids)
        assert np.allclose(original.distances, reloaded.distances, atol=1e-5)

    def test_centroids_preserved(self, clustered, tmp_path):
        save_datastore(clustered, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        assert np.allclose(loaded.centroids(), clustered.centroids())

    def test_warm_scan_state_survives_round_trip(self, clustered, tmp_path):
        # save_datastore delegates to save_ivf, which warms the scan state:
        # every reloaded shard must come back with its pruning radii so the
        # first serve-time search streams with pruning immediately.
        save_datastore(clustered, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        for shard in loaded.shards:
            assert shard.index._code_radii is not None
            assert len(shard.index._code_radii) == shard.index.ntotal

    def test_workers_mode_config_round_trips(self, clustered, tmp_path):
        import dataclasses

        store = dataclasses.replace(
            clustered,
            config=dataclasses.replace(
                clustered.config, search_workers_mode="process"
            ),
        )
        save_datastore(store, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        assert loaded.config.search_workers_mode == "process"

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_datastore(tmp_path / "nothing")


class TestMutationStateRoundTrip:
    def test_delta_tombstones_and_counters_survive(self, mutable_store, tmp_path):
        rng = np.random.default_rng(7)
        fresh = rng.normal(size=(9, 32)).astype(np.float32)
        new_ids = mutable_store.add_documents(fresh)
        mutable_store.delete_documents([3, 17, int(new_ids[0])])
        assert mutable_store.delta_rows() > 0

        save_datastore(mutable_store, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")

        assert loaded.mutations == mutable_store.mutations
        assert loaded.delta_rows() == mutable_store.delta_rows()
        for orig, back in zip(mutable_store.shards, loaded.shards):
            assert back.generation == orig.generation
            assert back.tombstones == orig.tombstones
        # The reloaded live shard serves bit-identical ids.
        queries = rng.normal(size=(6, 32)).astype(np.float32)
        original = HermesSearcher(mutable_store).search(queries, k=5)
        reloaded = HermesSearcher(loaded).search(queries, k=5)
        assert np.array_equal(original.ids, reloaded.ids)
        assert np.array_equal(original.distances, reloaded.distances)

    def test_compacted_store_writes_no_sidecars(self, mutable_store, tmp_path):
        mutable_store.add_documents(
            np.random.default_rng(8).normal(size=(4, 32)).astype(np.float32)
        )
        mutable_store.compact()
        save_datastore(mutable_store, tmp_path / "store")
        assert not list((tmp_path / "store").glob("mutation_*.npz"))
        loaded = load_datastore(tmp_path / "store")
        assert loaded.mutations == mutable_store.mutations
        assert loaded.delta_rows() == 0

    def test_pre_format5_directory_loads_clean(self, clustered, tmp_path):
        # A directory written before live mutation existed has no
        # "mutations" key, no per-shard "generation", and no sidecars.
        save_datastore(clustered, tmp_path / "store")
        manifest_path = tmp_path / "store" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["mutations"]
        for entry in manifest["shards"]:
            del entry["generation"]
        manifest_path.write_text(json.dumps(manifest))

        loaded = load_datastore(tmp_path / "store")
        assert loaded.mutations == 0
        assert loaded.delta_rows() == 0
        assert all(s.generation == 0 for s in loaded.shards)
        assert all(not s.has_mutations for s in loaded.shards)


class TestConcurrentSave:
    def test_save_during_concurrent_mutation_loads_clean(
        self, mutable_store, tmp_path
    ):
        # save_datastore quiesces each shard while writing it, so a save
        # racing live mutations must still persist a consistent cut per
        # shard. IndexShard.__post_init__ rejects torn shards (ids array vs
        # sealed+delta rows), so a successful load proves consistency.
        stop = threading.Event()
        failures: list = []

        def mutator():
            r = np.random.default_rng(23)
            n = 0
            try:
                while not stop.is_set():
                    ids = mutable_store.add_documents(
                        r.normal(size=(2, 32)).astype(np.float32)
                    )
                    mutable_store.delete_documents(ids[:1])
                    n += 1
                    if n % 3 == 0:
                        mutable_store.compact()
            except Exception as exc:  # pragma: no cover - the failure signal
                failures.append(exc)

        worker = threading.Thread(target=mutator)
        worker.start()
        try:
            for i in range(3):
                save_datastore(mutable_store, tmp_path / f"store_{i}")
        finally:
            stop.set()
            worker.join()
        assert not failures, failures
        for i in range(3):
            loaded = load_datastore(tmp_path / f"store_{i}")
            assert loaded.ntotal > 0


class TestAtomicWrites:
    def test_atomic_write_preserves_old_contents_on_crash(self, tmp_path):
        target = tmp_path / "blob.bin"
        _atomic_write(target, lambda f: f.write(b"generation one"))

        def crashing_writer(f):
            f.write(b"partial garbage")
            raise RuntimeError("disk full")

        with pytest.raises(RuntimeError, match="disk full"):
            _atomic_write(target, crashing_writer)
        assert target.read_bytes() == b"generation one"
        assert not list(tmp_path.glob("*.tmp"))

    def test_crashed_resave_leaves_store_loadable(
        self, mutable_store, tmp_path, monkeypatch
    ):
        # Save a good store, then crash a second save mid-shard: the
        # directory must still load as the *first* complete store.
        store_dir = tmp_path / "store"
        save_datastore(mutable_store, store_dir)
        before = load_datastore(store_dir)

        calls = {"n": 0}
        real_save_ivf = store_io.save_ivf

        def flaky_save_ivf(index, f):
            calls["n"] += 1
            if calls["n"] == 2:
                f.write(b"\x00" * 16)  # partial bytes, then the "crash"
                raise OSError("injected crash mid-write")
            real_save_ivf(index, f)

        monkeypatch.setattr(store_io, "save_ivf", flaky_save_ivf)
        mutable_store.delete_documents([0, 1])
        with pytest.raises(OSError, match="injected crash"):
            save_datastore(mutable_store, store_dir)
        monkeypatch.undo()

        after = load_datastore(store_dir)
        assert not list(store_dir.glob("*.tmp"))
        assert after.mutations == before.mutations
        assert after.ntotal == before.ntotal
        for a, b in zip(after.shards, before.shards):
            assert np.array_equal(a.global_ids, b.global_ids)
            assert a.tombstones == b.tombstones
