"""Tests for clustered-datastore persistence."""

import numpy as np
import pytest

from repro.core.store_io import load_datastore, save_datastore
from repro.core.hierarchical import HermesSearcher


class TestDatastoreRoundTrip:
    def test_structure_preserved(self, clustered, tmp_path):
        save_datastore(clustered, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        assert loaded.n_clusters == clustered.n_clusters
        assert loaded.ntotal == clustered.ntotal
        assert np.array_equal(loaded.assignments, clustered.assignments)
        assert np.array_equal(loaded.sizes(), clustered.sizes())
        assert loaded.config == clustered.config

    def test_search_identical(self, clustered, small_queries, tmp_path):
        save_datastore(clustered, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        original = HermesSearcher(clustered).search(small_queries.embeddings[:8])
        reloaded = HermesSearcher(loaded).search(small_queries.embeddings[:8])
        assert np.array_equal(original.ids, reloaded.ids)
        assert np.allclose(original.distances, reloaded.distances, atol=1e-5)

    def test_centroids_preserved(self, clustered, tmp_path):
        save_datastore(clustered, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        assert np.allclose(loaded.centroids(), clustered.centroids())

    def test_warm_scan_state_survives_round_trip(self, clustered, tmp_path):
        # save_datastore delegates to save_ivf, which warms the scan state:
        # every reloaded shard must come back with its pruning radii so the
        # first serve-time search streams with pruning immediately.
        save_datastore(clustered, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        for shard in loaded.shards:
            assert shard.index._code_radii is not None
            assert len(shard.index._code_radii) == shard.index.ntotal

    def test_workers_mode_config_round_trips(self, clustered, tmp_path):
        import dataclasses

        store = dataclasses.replace(
            clustered,
            config=dataclasses.replace(
                clustered.config, search_workers_mode="process"
            ),
        )
        save_datastore(store, tmp_path / "store")
        loaded = load_datastore(tmp_path / "store")
        assert loaded.config.search_workers_mode == "process"

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_datastore(tmp_path / "nothing")
