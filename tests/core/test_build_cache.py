"""Tests for the fingerprinted build cache."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.build_cache import (
    BuildCache,
    CacheStats,
    build_fingerprint,
    cache_enabled,
    cached_cluster_datastore,
    default_cache_dir,
)
from repro.core.clustering import cluster_datastore
from repro.core.config import HermesConfig
from repro.core.hierarchical import HermesSearcher


@pytest.fixture(scope="module")
def embeddings(small_corpus):
    # A slice keeps cache-test builds fast while sharing the session corpus.
    return small_corpus.embeddings[:1500]


@pytest.fixture(scope="module")
def config():
    return HermesConfig(n_clusters=4, clusters_to_search=2)


@pytest.fixture()
def cache(tmp_path):
    return BuildCache(tmp_path / "builds", stats=CacheStats())


class TestFingerprint:
    def test_deterministic(self, embeddings, config):
        assert build_fingerprint(embeddings, config) == build_fingerprint(
            embeddings, config
        )

    def test_embedding_content_invalidates(self, embeddings, config):
        perturbed = embeddings.copy()
        perturbed[0, 0] += 1.0
        assert build_fingerprint(embeddings, config) != build_fingerprint(
            perturbed, config
        )

    def test_build_field_invalidates(self, embeddings, config):
        changed = replace(config, quantization="pq8")
        assert build_fingerprint(embeddings, config) != build_fingerprint(
            embeddings, changed
        )
        changed = replace(config, kmeans_algorithm="lloyd")
        assert build_fingerprint(embeddings, config) != build_fingerprint(
            embeddings, changed
        )

    def test_search_only_fields_ignored(self, embeddings, config):
        retuned = replace(config, sample_nprobe=32, clusters_to_search=3, k=7)
        assert build_fingerprint(embeddings, config) == build_fingerprint(
            embeddings, retuned
        )

    def test_build_workers_ignored(self, embeddings, config):
        threaded = replace(config, build_workers=8)
        assert build_fingerprint(embeddings, config) == build_fingerprint(
            embeddings, threaded
        )


class TestBuildCache:
    def test_miss_then_hit(self, embeddings, config, cache):
        first = cached_cluster_datastore(
            embeddings, config, cache=cache, use_cache=True
        )
        assert (cache.stats.misses, cache.stats.hits, cache.stats.stores) == (1, 0, 1)
        second = cached_cluster_datastore(
            embeddings, config, cache=cache, use_cache=True
        )
        assert (cache.stats.misses, cache.stats.hits, cache.stats.stores) == (1, 1, 1)
        assert second.ntotal == first.ntotal
        assert np.array_equal(second.assignments, first.assignments)

    def test_hit_serves_identical_search_results(
        self, embeddings, config, cache, small_queries
    ):
        built = cached_cluster_datastore(embeddings, config, cache=cache, use_cache=True)
        loaded = cached_cluster_datastore(
            embeddings, config, cache=cache, use_cache=True
        )
        q = small_queries.embeddings[:8]
        a = HermesSearcher(built).search(q, k=5, clusters_to_search=2)
        b = HermesSearcher(loaded).search(q, k=5, clusters_to_search=2)
        assert np.array_equal(a.ids, b.ids)
        assert np.allclose(a.distances, b.distances)

    def test_hit_restores_clustering_state(self, embeddings, config, cache):
        built = cached_cluster_datastore(embeddings, config, cache=cache, use_cache=True)
        loaded = cached_cluster_datastore(
            embeddings, config, cache=cache, use_cache=True
        )
        assert loaded.clustering is not None
        assert loaded.clustering.seed == built.clustering.seed
        assert loaded.clustering.inertia == pytest.approx(built.clustering.inertia)
        assert np.array_equal(
            loaded.clustering.assignments, built.clustering.assignments
        )

    def test_hit_adopts_requested_search_config(self, embeddings, config, cache):
        cached_cluster_datastore(embeddings, config, cache=cache, use_cache=True)
        retuned = replace(config, clusters_to_search=3, k=9)
        loaded = cached_cluster_datastore(
            embeddings, retuned, cache=cache, use_cache=True
        )
        assert cache.stats.hits == 1
        assert loaded.config == retuned

    def test_changed_embeddings_rebuild(self, embeddings, config, cache):
        cached_cluster_datastore(embeddings, config, cache=cache, use_cache=True)
        perturbed = embeddings + 0.01
        cached_cluster_datastore(perturbed, config, cache=cache, use_cache=True)
        assert (cache.stats.misses, cache.stats.hits) == (2, 0)

    def test_use_cache_false_bypasses(self, embeddings, config, cache):
        cached_cluster_datastore(embeddings, config, cache=cache, use_cache=False)
        assert cache.stats.lookups == 0
        assert not cache.directory.exists()

    def test_clear_forgets_entries(self, embeddings, config, cache):
        key = build_fingerprint(embeddings, config)
        cached_cluster_datastore(embeddings, config, cache=cache, use_cache=True)
        assert cache.has(key)
        cache.clear()
        assert not cache.has(key)

    def test_matches_direct_build(self, embeddings, config, cache):
        direct = cluster_datastore(embeddings, config)
        via_cache = cached_cluster_datastore(
            embeddings, config, cache=cache, use_cache=True
        )
        assert np.array_equal(direct.assignments, via_cache.assignments)
        for a, b in zip(direct.shards, via_cache.shards):
            assert np.array_equal(a.global_ids, b.global_ids)


class TestEnvironmentControls:
    def test_cache_enabled_default(self, monkeypatch):
        monkeypatch.delenv("HERMES_BUILD_CACHE", raising=False)
        assert cache_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", " OFF "])
    def test_cache_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("HERMES_BUILD_CACHE", value)
        assert not cache_enabled()

    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("HERMES_BUILD_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
