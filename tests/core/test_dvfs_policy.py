"""Tests for the Hermes DVFS policies."""

import pytest

from repro.core.dvfs_policy import evaluate_dvfs
from repro.core.hierarchical import HermesSearcher
from repro.core.scheduler import HermesScheduler


@pytest.fixture()
def scheduler(clustered):
    # A scale where the deep search is comparable to inference, as in the
    # paper's DVFS study.
    return HermesScheduler(datastore=clustered, total_tokens=20e9)


@pytest.fixture()
def decision(clustered, small_queries):
    return HermesSearcher(clustered).search(small_queries.embeddings).routing


class TestEvaluateDVFS:
    def test_orderings(self, scheduler, decision):
        cmp = evaluate_dvfs(scheduler, decision, inference_latency_s=0.72)
        assert cmp.baseline.energy_j <= cmp.none.energy_j * 1.001
        assert cmp.baseline_savings >= -1e-6
        assert cmp.enhanced_savings >= -1e-6

    def test_enhanced_exploits_inference_window(self, scheduler, decision):
        # A looser inference window lets enhanced DVFS slow deeper, saving
        # more dynamic energy in absolute joules (fractional savings can
        # shrink because the longer period accrues more idle energy).
        tight = evaluate_dvfs(scheduler, decision, inference_latency_s=0.01)
        loose = evaluate_dvfs(scheduler, decision, inference_latency_s=10.0)
        tight_saved_j = tight.none.energy_j - tight.enhanced.energy_j
        loose_saved_j = loose.none.energy_j - loose.enhanced.energy_j
        assert loose_saved_j >= tight_saved_j - 1e-6

    def test_baseline_latency_preserved(self, scheduler, decision):
        cmp = evaluate_dvfs(scheduler, decision, inference_latency_s=0.72)
        assert cmp.baseline.latency_s <= cmp.none.latency_s * 1.001

    def test_only_one_trace_entry(self, scheduler, decision):
        evaluate_dvfs(scheduler, decision, inference_latency_s=0.72)
        assert len(scheduler.trace) == 1

    def test_rejects_bad_window(self, scheduler, decision):
        with pytest.raises(ValueError):
            evaluate_dvfs(scheduler, decision, inference_latency_s=0.0)
