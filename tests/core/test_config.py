"""Tests for HermesConfig (Table 2)."""

import pytest

from repro.core.config import HermesConfig


class TestDefaults:
    def test_paper_operating_point(self):
        cfg = HermesConfig()
        assert cfg.n_clusters == 10
        assert cfg.sample_nprobe == 8
        assert cfg.deep_nprobe == 128
        assert cfg.clusters_to_search == 3
        assert cfg.k == 5
        assert cfg.rerank_top == 1
        assert cfg.quantization == "sq8"

    def test_hashable_for_memoisation(self):
        assert hash(HermesConfig()) == hash(HermesConfig())


class TestValidation:
    def test_clusters_to_search_bounded(self):
        with pytest.raises(ValueError):
            HermesConfig(n_clusters=4, clusters_to_search=5)
        with pytest.raises(ValueError):
            HermesConfig(clusters_to_search=0)

    def test_nprobe_positive(self):
        with pytest.raises(ValueError):
            HermesConfig(sample_nprobe=0)
        with pytest.raises(ValueError):
            HermesConfig(deep_nprobe=-1)

    def test_rerank_top_within_k(self):
        with pytest.raises(ValueError):
            HermesConfig(k=5, rerank_top=6)
        with pytest.raises(ValueError):
            HermesConfig(rerank_top=0)

    def test_seed_sweep_nonempty(self):
        with pytest.raises(ValueError):
            HermesConfig(kmeans_seeds=())

    def test_subset_fraction_range(self):
        with pytest.raises(ValueError):
            HermesConfig(kmeans_subset_fraction=0.0)
        with pytest.raises(ValueError):
            HermesConfig(kmeans_subset_fraction=1.5)

    def test_custom_values_accepted(self):
        cfg = HermesConfig(n_clusters=4, clusters_to_search=2, k=10, rerank_top=3)
        assert cfg.n_clusters == 4

    def test_search_workers_mode_validated(self):
        assert HermesConfig(search_workers_mode="process").search_workers_mode == (
            "process"
        )
        with pytest.raises(ValueError, match="search_workers_mode"):
            HermesConfig(search_workers_mode="greenlet")
