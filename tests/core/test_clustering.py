"""Tests for datastore disaggregation."""

import numpy as np
import pytest

from repro.core.clustering import assign_queries_to_shards
from repro.core.config import HermesConfig
from repro.core.clustering import cluster_datastore, split_datastore_evenly


class TestClusteredDatastore:
    def test_all_documents_covered_once(self, clustered, small_corpus):
        all_ids = np.concatenate([s.global_ids for s in clustered.shards])
        assert len(all_ids) == len(small_corpus)
        assert len(np.unique(all_ids)) == len(small_corpus)

    def test_ten_shards(self, clustered):
        assert clustered.n_clusters == 10

    def test_shards_topically_pure(self, clustered, small_corpus):
        # Semantic clustering should make each shard mostly one latent topic.
        purities = []
        for shard in clustered.shards:
            topics = small_corpus.topics[shard.global_ids]
            purities.append(np.bincount(topics).max() / len(topics))
        assert np.mean(purities) > 0.8

    def test_imbalance_near_paper_2x(self, clustered):
        assert clustered.imbalance < 3.0

    def test_assignments_match_shards(self, clustered):
        for shard in clustered.shards:
            assert (clustered.assignments[shard.global_ids] == shard.shard_id).all()

    def test_memory_sums_shards(self, clustered):
        assert clustered.memory_bytes() == sum(
            s.memory_bytes() for s in clustered.shards
        )

    def test_shard_token_sizes_proportional(self, clustered):
        tokens = clustered.shard_token_sizes(1e12)
        assert sum(tokens) == pytest.approx(1e12)
        sizes = clustered.sizes()
        assert tokens[0] / tokens[1] == pytest.approx(
            sizes[0] / sizes[1], rel=1e-6
        )


class TestShardSearch:
    def test_returns_global_ids(self, clustered, small_corpus):
        shard = clustered.shards[0]
        _, ids = shard.search(small_corpus.embeddings[shard.global_ids[:2]], 3)
        valid = ids[ids >= 0]
        assert set(valid).issubset(set(shard.global_ids))

    def test_self_query_finds_self(self, clustered, small_corpus):
        shard = clustered.shards[0]
        probe = small_corpus.embeddings[shard.global_ids[:5]]
        _, ids = shard.search(probe, 1, nprobe=shard.index.nlist)
        assert list(ids[:, 0]) == list(shard.global_ids[:5])

    def test_padding_for_oversized_k(self, clustered, small_corpus):
        shard = min(clustered.shards, key=len)
        _, ids = shard.search(small_corpus.embeddings[:1], len(shard) + 5)
        assert (ids == -1).any()


class TestEvenSplit:
    def test_equal_sizes(self, even_split):
        sizes = even_split.sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_no_clustering_metadata(self, even_split):
        assert even_split.clustering is None

    def test_split_shards_not_topical(self, even_split, small_corpus):
        purities = []
        for shard in even_split.shards:
            topics = small_corpus.topics[shard.global_ids]
            purities.append(np.bincount(topics, minlength=10).max() / len(topics))
        assert np.mean(purities) < 0.4

    def test_rejects_too_few_documents(self):
        with pytest.raises(ValueError, match="at least"):
            split_datastore_evenly(np.zeros((3, 4), dtype=np.float32))


class TestQueryAssignment:
    def test_queries_route_to_topic_shard(self, clustered, small_corpus, small_queries):
        assigned = assign_queries_to_shards(clustered, small_queries.embeddings)
        assert assigned.shape == (len(small_queries),)
        assert (assigned >= 0).all() and (assigned < 10).all()


class TestErrorPaths:
    def test_too_many_clusters_for_tiny_corpus(self):
        emb = np.random.default_rng(0).normal(size=(30, 8)).astype(np.float32)
        emb /= np.linalg.norm(emb, axis=1, keepdims=True)
        config = HermesConfig(n_clusters=3, clusters_to_search=2)
        ds = cluster_datastore(emb, config)
        assert ds.ntotal == 30


class TestParallelBuilds:
    """Shard builds and seed-sweep trials are independently seeded, so the
    worker count must never change the built artifact."""

    @pytest.fixture(scope="class")
    def corpus(self, small_corpus):
        return small_corpus.embeddings[:1500]

    def _configs(self):
        base = HermesConfig(n_clusters=4, clusters_to_search=2)
        from dataclasses import replace

        return replace(base, build_workers=1), replace(base, build_workers=4)

    def test_clustered_bit_exact_across_workers(self, corpus):
        serial_cfg, threaded_cfg = self._configs()
        serial = cluster_datastore(corpus, serial_cfg)
        threaded = cluster_datastore(corpus, threaded_cfg)
        assert np.array_equal(serial.assignments, threaded.assignments)
        for a, b in zip(serial.shards, threaded.shards):
            assert np.array_equal(a.global_ids, b.global_ids)
            assert np.array_equal(a.centroid, b.centroid)
            a.index.compact()
            b.index.compact()
            assert np.array_equal(a.index._codes, b.index._codes)
            assert np.array_equal(a.index._ids, b.index._ids)

    def test_split_bit_exact_across_workers(self, corpus):
        serial_cfg, threaded_cfg = self._configs()
        serial = split_datastore_evenly(corpus, serial_cfg, seed=3)
        threaded = split_datastore_evenly(corpus, threaded_cfg, seed=3)
        assert np.array_equal(serial.assignments, threaded.assignments)
        for a, b in zip(serial.shards, threaded.shards):
            a.index.compact()
            b.index.compact()
            assert np.array_equal(a.index._codes, b.index._codes)

    def test_add_documents_chunked_routing(self, small_corpus):
        config = HermesConfig(n_clusters=4, clusters_to_search=2)
        datastore = cluster_datastore(small_corpus.embeddings[:1200], config)
        from repro.ann.kmeans import assign_to_centroids

        new = small_corpus.embeddings[1200:1300]
        expected = assign_to_centroids(new, datastore.centroids(), "l2")
        before = datastore.ntotal
        ids = datastore.add_documents(new)
        assert np.array_equal(datastore.assignments[before:], expected)
        assert len(ids) == 100
