"""Tests for the load-aware routing extension."""

import numpy as np
import pytest

from repro.baselines.monolithic import MonolithicRetriever
from repro.core.hierarchical import HierarchicalSearcher
from repro.core.router import LoadAwareRouter, SampledRouter
from repro.metrics.ndcg import ndcg
from repro.perfmodel.trace import BatchRouting


def node_loads(decision, n):
    return BatchRouting(clusters=decision.clusters).node_loads(n)


class TestLoadAwareRouting:
    def test_zero_slack_matches_base(self, clustered, small_queries):
        base = SampledRouter()
        aware = LoadAwareRouter(base, np.zeros(10), slack=0.0)
        a = base.route(small_queries.embeddings, clustered, 3)
        b = aware.route(small_queries.embeddings, clustered, 3)
        assert set(map(tuple, a.clusters.tolist())) == set(
            map(tuple, b.clusters.tolist())
        )

    def test_costly_node_avoided_when_ties_allow(self, clustered, small_queries):
        base = SampledRouter()
        plain = base.route(small_queries.embeddings, clustered, 3)
        hot = int(np.bincount(plain.clusters.ravel(), minlength=10).argmax())
        costs = np.zeros(10)
        costs[hot] = 1.0
        aware = LoadAwareRouter(base, costs, slack=0.2)
        shifted = aware.route(small_queries.embeddings, clustered, 3)
        before = node_loads(plain, 10)[hot]
        after = node_loads(shifted, 10)[hot]
        assert after < before

    def test_excluded_clusters_respected(self, clustered, small_queries):
        aware = LoadAwareRouter(SampledRouter(), np.zeros(10), slack=0.2)
        decision = aware.route(
            small_queries.embeddings, clustered, 3, exclude=frozenset({1, 4})
        )
        assert not np.isin(decision.clusters, [1, 4]).any()

    def test_accuracy_cost_bounded(self, clustered, small_corpus, small_queries):
        mono = MonolithicRetriever(small_corpus.embeddings)
        _, truth = mono.ground_truth(small_queries.embeddings, 5)
        plain = HierarchicalSearcher(clustered, router=SampledRouter())
        rng = np.random.default_rng(0)
        aware = HierarchicalSearcher(
            clustered,
            router=LoadAwareRouter(SampledRouter(), rng.uniform(size=10), slack=0.05),
        )
        base_score = ndcg(
            plain.search(small_queries.embeddings, clusters_to_search=3).ids, truth
        )
        aware_score = ndcg(
            aware.search(small_queries.embeddings, clusters_to_search=3).ids, truth
        )
        assert aware_score > base_score - 0.05

    def test_validation(self, clustered, small_queries):
        with pytest.raises(ValueError):
            LoadAwareRouter(SampledRouter(), np.zeros(10), slack=-0.1)
        bad = LoadAwareRouter(SampledRouter(), np.zeros(3))
        with pytest.raises(ValueError, match="node_costs"):
            bad.route(small_queries.embeddings, clustered, 3)
