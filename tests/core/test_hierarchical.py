"""Tests for the hierarchical sample→deep→rerank search."""

import numpy as np
import pytest

from repro.baselines.monolithic import MonolithicRetriever
from repro.core.hierarchical import (
    ExhaustiveSplitSearcher,
    HermesSearcher,
    HierarchicalSearcher,
)
from repro.core.router import CentroidRouter
from repro.metrics.ndcg import ndcg
from repro.metrics.recall import recall_at_k


@pytest.fixture(scope="module")
def truth(small_corpus, small_queries):
    mono = MonolithicRetriever(small_corpus.embeddings)
    return mono.ground_truth(small_queries.embeddings, 5)[1]


@pytest.fixture(scope="module")
def hermes(clustered):
    return HermesSearcher(clustered)


class TestSearchMechanics:
    def test_result_shapes(self, hermes, small_queries):
        result = hermes.search(small_queries.embeddings)
        assert result.ids.shape == (len(small_queries), 5)
        assert result.distances.shape == (len(small_queries), 5)
        assert result.batch_size == len(small_queries)

    def test_results_sorted_by_distance(self, hermes, small_queries):
        result = hermes.search(small_queries.embeddings)
        finite = np.where(np.isfinite(result.distances), result.distances, np.inf)
        assert (np.diff(finite, axis=1) >= -1e-5).all()

    def test_ids_unique_per_query(self, hermes, small_queries):
        result = hermes.search(small_queries.embeddings)
        for row in result.ids:
            valid = row[row >= 0]
            assert len(valid) == len(set(valid.tolist()))

    def test_shard_queries_equals_batch_times_fanout(self, hermes, small_queries):
        result = hermes.search(small_queries.embeddings, clusters_to_search=3)
        assert result.shard_queries == len(small_queries) * 3

    def test_results_come_from_routed_shards(self, hermes, clustered, small_queries):
        result = hermes.search(small_queries.embeddings, clusters_to_search=2)
        for qi, row in enumerate(result.ids):
            allowed = set()
            for cid in result.routing.clusters[qi]:
                allowed.update(clustered.shards[int(cid)].global_ids.tolist())
            assert all(int(doc) in allowed for doc in row if doc >= 0)


class TestAccuracy:
    def test_iso_accuracy_at_three_clusters(self, hermes, small_queries, truth):
        # The paper's headline accuracy claim (Fig. 11).
        result = hermes.search(small_queries.embeddings, clusters_to_search=3)
        assert ndcg(result.ids, truth) > 0.93

    def test_accuracy_monotone_in_fanout(self, hermes, small_queries, truth):
        scores = [
            ndcg(hermes.search(small_queries.embeddings, clusters_to_search=m).ids, truth)
            for m in (1, 3, 10)
        ]
        assert scores[0] <= scores[1] + 0.02
        assert scores[1] <= scores[2] + 0.02

    def test_sampling_beats_centroid_routing(self, clustered, small_queries, truth):
        sampled = HermesSearcher(clustered)
        centroid = HierarchicalSearcher(clustered, router=CentroidRouter())
        m = 2
        s_score = ndcg(
            sampled.search(small_queries.embeddings, clusters_to_search=m).ids, truth
        )
        c_score = ndcg(
            centroid.search(small_queries.embeddings, clusters_to_search=m).ids, truth
        )
        assert s_score >= c_score - 0.01

    def test_semantic_clusters_beat_random_split(
        self, clustered, even_split, small_queries, truth
    ):
        m = 3
        semantic = HermesSearcher(clustered).search(
            small_queries.embeddings, clusters_to_search=m
        )
        random_split = HermesSearcher(even_split).search(
            small_queries.embeddings, clusters_to_search=m
        )
        assert ndcg(semantic.ids, truth) > ndcg(random_split.ids, truth)

    def test_deep_nprobe_improves_recall(self, hermes, small_queries, truth):
        shallow = hermes.search(
            small_queries.embeddings, clusters_to_search=3, deep_nprobe=1
        )
        deep = hermes.search(
            small_queries.embeddings, clusters_to_search=3, deep_nprobe=128
        )
        assert recall_at_k(deep.ids, truth) >= recall_at_k(shallow.ids, truth)


class TestParameterValidation:
    """Explicit zero must be rejected, not silently swallowed to a default
    (the old ``k or self.config.k`` pattern treated 0 as 'unset')."""

    def test_zero_k_rejected(self, hermes, small_queries):
        with pytest.raises(ValueError, match="k must be positive"):
            hermes.search(small_queries.embeddings, k=0)

    def test_zero_clusters_to_search_rejected(self, hermes, small_queries):
        with pytest.raises(ValueError, match="clusters_to_search"):
            hermes.search(small_queries.embeddings, clusters_to_search=0)

    def test_zero_deep_nprobe_rejected(self, hermes, small_queries):
        with pytest.raises(ValueError, match="deep_nprobe"):
            hermes.search(small_queries.embeddings, deep_nprobe=0)

    def test_zero_max_workers_rejected(self, clustered):
        with pytest.raises(ValueError, match="max_workers"):
            HermesSearcher(clustered, max_workers=0)


class TestParallelFanout:
    def test_threaded_matches_sequential(self, clustered, small_queries):
        sequential = HermesSearcher(clustered)
        threaded = HermesSearcher(clustered, max_workers=4)
        a = sequential.search(small_queries.embeddings)
        b = threaded.search(small_queries.embeddings)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_allclose(a.distances, b.distances, rtol=1e-5, atol=1e-5)

    def test_parallel_flag_overrides_construction(self, clustered, small_queries):
        searcher = HermesSearcher(clustered)
        a = searcher.search(small_queries.embeddings, parallel=False)
        b = searcher.search(small_queries.embeddings, parallel=True)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_threaded_with_deep_patience(self, clustered, small_queries):
        sequential = HermesSearcher(clustered)
        threaded = HermesSearcher(clustered, max_workers=4)
        a = sequential.search(small_queries.embeddings, deep_patience=4)
        b = threaded.search(small_queries.embeddings, deep_patience=4)
        np.testing.assert_array_equal(a.ids, b.ids)


class TestExhaustiveSplit:
    def test_searches_all_clusters(self, even_split, small_queries):
        searcher = ExhaustiveSplitSearcher(even_split)
        result = searcher.search(small_queries.embeddings)
        assert result.shard_queries == len(small_queries) * even_split.n_clusters

    def test_recovers_monolithic_quality(self, even_split, small_queries, truth):
        searcher = ExhaustiveSplitSearcher(even_split)
        result = searcher.search(small_queries.embeddings)
        assert ndcg(result.ids, truth) > 0.93


class TestEarlyTerminationComposition:
    def test_deep_patience_preserves_quality(self, hermes, small_queries, truth):
        """§7 composition: adaptive termination inside the Hermes deep search
        keeps near-full NDCG."""
        full = hermes.search(small_queries.embeddings, clusters_to_search=3)
        eager = hermes.search(
            small_queries.embeddings, clusters_to_search=3, deep_patience=8
        )
        assert ndcg(eager.ids, truth) > ndcg(full.ids, truth) - 0.05

    def test_deep_patience_ids_remain_global(self, hermes, clustered, small_queries):
        result = hermes.search(
            small_queries.embeddings, clusters_to_search=2, deep_patience=4
        )
        assert (result.ids < clustered.ntotal).all()
        for qi, row in enumerate(result.ids):
            allowed = set()
            for cid in result.routing.clusters[qi]:
                allowed.update(clustered.shards[int(cid)].global_ids.tolist())
            assert all(int(d) in allowed for d in row if d >= 0)


class TestExcludeClusters:
    def test_all_shards_excluded_raises_unavailable(self, hermes, small_queries):
        from repro.core.errors import RetrievalUnavailableError

        with pytest.raises(RetrievalUnavailableError, match="all"):
            hermes.search(
                small_queries.embeddings,
                exclude_clusters=set(range(hermes.datastore.n_clusters)),
            )

    def test_unknown_shard_id_rejected(self, hermes, small_queries):
        with pytest.raises(ValueError, match="unknown shard ids"):
            hermes.search(small_queries.embeddings, exclude_clusters={99})
        with pytest.raises(ValueError, match="unknown shard ids"):
            hermes.search(small_queries.embeddings, exclude_clusters={-1})

    def test_user_exclusion_is_not_a_failure(self, hermes, small_queries):
        result = hermes.search(small_queries.embeddings, exclude_clusters={0})
        assert not result.degraded
        assert result.failed_shards == ()
        routed = {int(c) for row in result.routing.clusters for c in row}
        assert 0 not in routed

    def test_degradation_localised_to_excluded_cluster(
        self, hermes, clustered, small_queries
    ):
        """Excluding one cluster leaves queries routed to surviving
        clusters completely untouched — the graceful-degradation bound."""
        healthy = hermes.search(small_queries.embeddings, clusters_to_search=3)
        excluded = 4
        degraded = hermes.search(
            small_queries.embeddings, clusters_to_search=3,
            exclude_clusters={excluded},
        )
        surviving = [
            qi
            for qi in range(len(small_queries))
            if excluded not in set(healthy.routing.clusters[qi].tolist())
        ]
        assert surviving
        for qi in surviving:
            np.testing.assert_array_equal(degraded.ids[qi], healthy.ids[qi])
            # float32 scoring: the shrunken candidate layout may flip the
            # last bit, so compare with a small tolerance
            np.testing.assert_allclose(
                degraded.distances[qi], healthy.distances[qi], rtol=1e-5
            )

    def test_surviving_query_ndcg_unchanged(
        self, hermes, small_queries, truth
    ):
        from repro.metrics.ndcg import ndcg_single

        healthy = hermes.search(small_queries.embeddings, clusters_to_search=3)
        excluded = 4
        degraded = hermes.search(
            small_queries.embeddings, clusters_to_search=3,
            exclude_clusters={excluded},
        )
        for qi in range(len(small_queries)):
            if excluded in set(healthy.routing.clusters[qi].tolist()):
                continue
            assert ndcg_single(degraded.ids[qi], truth[qi]) == pytest.approx(
                ndcg_single(healthy.ids[qi], truth[qi])
            )


class _BoomShard:
    """Wraps a shard so its deep search raises an unexpected error."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __len__(self):
        return len(self._inner)

    def search(self, queries, k, nprobe=None):
        raise RuntimeError("disk on fire")


class TestShardErrorContext:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_deep_search_errors_carry_shard_context(
        self, clustered, small_queries, workers
    ):
        """Without a policy the searcher fails fast, but the exception names
        the shard and the routed query count (the debugging breadcrumbs)."""
        import dataclasses

        from repro.core.errors import ShardSearchError

        boom_id = 3
        shards = [
            _BoomShard(s) if s.shard_id == boom_id else s
            for s in clustered.shards
        ]
        broken = dataclasses.replace(clustered, shards=shards)
        # CentroidRouter: sampling never touches shard.search, so the
        # explosion happens in the deep phase where it gets wrapped.
        searcher = HierarchicalSearcher(
            broken, router=CentroidRouter(), max_workers=workers
        )
        with pytest.raises(ShardSearchError, match=f"shard {boom_id}") as exc:
            searcher.search(small_queries.embeddings, clusters_to_search=10)
        assert exc.value.shard_id == boom_id
        assert exc.value.n_queries == len(small_queries)
        assert "32 routed queries" in str(exc.value)
        assert isinstance(exc.value.__cause__, RuntimeError)


class _TimedFlakyShard:
    """Wraps a shard: each search advances a fake clock, the first throws."""

    def __init__(self, inner, clock, busy_s=0.05):
        self._inner = inner
        self._clock = clock
        self._busy_s = busy_s
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __len__(self):
        return len(self._inner)

    def search(self, queries, k, nprobe=None):
        self.calls += 1
        self._clock.advance(self._busy_s)
        if self.calls == 1:
            from repro.core.errors import TransientShardError

            raise TransientShardError(self._inner.shard_id, "transient blip")
        return self._inner.search(queries, k, nprobe=nprobe)


class TestRetryLatencyAccounting:
    def test_backoff_sleep_excluded_from_shard_latency(
        self, clustered, small_queries
    ):
        """Reported shard latency is in-flight time only; retry backoff
        sleeps land in ``wall_s``. Regression: timing the whole retry loop
        with one clock pair straddled the sleep and inflated the flaky
        shard's latency 6x (0.6s reported for 0.1s of work here)."""
        import dataclasses

        from repro.core.hierarchical import RetrievalPolicy
        from repro.obs.trace import ManualClock

        clock = ManualClock()
        flaky_id = 2
        flaky = _TimedFlakyShard(clustered.shards[flaky_id], clock)
        shards = [
            flaky if s.shard_id == flaky_id else s for s in clustered.shards
        ]
        broken = dataclasses.replace(clustered, shards=shards)
        searcher = HierarchicalSearcher(
            broken,
            router=CentroidRouter(),
            policy=RetrievalPolicy(max_attempts=3, backoff_s=0.5),
            clock=clock,
            sleep=clock.sleep,
        )
        result = searcher.search(
            small_queries.embeddings, clusters_to_search=10
        )
        assert not result.degraded
        assert flaky.calls == 2
        stats = next(
            s for s in result.shard_stats if s.shard_id == flaky_id
        )
        assert stats.attempts == 2
        # two 0.05s attempts in flight; the 0.5s backoff is excluded
        assert stats.latency_s == pytest.approx(0.10)
        # ...but the full window (attempts + backoff) is still visible
        assert stats.wall_s == pytest.approx(0.60)

    def test_healthy_shard_latency_equals_wall(self, clustered, small_queries):
        """No retries: in-flight time and the wall window coincide."""
        import dataclasses

        from repro.core.hierarchical import RetrievalPolicy
        from repro.obs.trace import ManualClock

        clock = ManualClock()
        timed_id = 1
        timed = _TimedFlakyShard(clustered.shards[timed_id], clock)
        timed.calls = 1  # skip the failure branch: every call succeeds
        shards = [
            timed if s.shard_id == timed_id else s for s in clustered.shards
        ]
        searcher = HierarchicalSearcher(
            dataclasses.replace(clustered, shards=shards),
            router=CentroidRouter(),
            policy=RetrievalPolicy(max_attempts=3, backoff_s=0.5),
            clock=clock,
            sleep=clock.sleep,
        )
        result = searcher.search(small_queries.embeddings, clusters_to_search=10)
        stats = next(s for s in result.shard_stats if s.shard_id == timed_id)
        assert stats.attempts == 1
        assert stats.latency_s == pytest.approx(0.05)
        assert stats.wall_s == pytest.approx(stats.latency_s)


class _AlwaysFlakyShard:
    """Wraps a shard so every deep search raises a transient error."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __len__(self):
        return len(self._inner)

    def search(self, queries, k, nprobe=None):
        from repro.core.errors import TransientShardError

        self.calls += 1
        raise TransientShardError(self._inner.shard_id, "still flapping")


class TestRetryBudget:
    def test_bucket_mechanics(self):
        from repro.core.hierarchical import RetryBudget

        with pytest.raises(ValueError):
            RetryBudget(capacity=0)
        with pytest.raises(ValueError):
            RetryBudget(fill_rate=1.5)
        budget = RetryBudget(capacity=2.0, fill_rate=0.5)
        assert budget.tokens == 2.0
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()  # dry
        assert budget.exhausted == 1
        budget.deposit()
        budget.deposit()  # two primary attempts buy back one retry
        assert budget.try_spend()
        for _ in range(100):
            budget.deposit()
        assert budget.tokens == budget.capacity  # capped
        budget.reset()
        assert budget.tokens == 2.0 and budget.exhausted == 0

    def test_dry_budget_suppresses_retries(self, clustered, small_queries):
        """Per-shard policy allows 5 attempts, but the shared fleet budget
        has one token: exactly one retry happens, then the shard degrades
        with the retry-budget-exhausted outcome instead of retrying on."""
        import dataclasses

        from repro.core.hierarchical import RetrievalPolicy, RetryBudget

        flaky_id = 2
        flaky = _AlwaysFlakyShard(clustered.shards[flaky_id])
        shards = [flaky if s.shard_id == flaky_id else s for s in clustered.shards]
        budget = RetryBudget(capacity=1.0, fill_rate=0.0)
        searcher = HierarchicalSearcher(
            dataclasses.replace(clustered, shards=shards),
            router=CentroidRouter(),
            policy=RetrievalPolicy(max_attempts=5, retry_budget=budget),
        )
        result = searcher.search(small_queries.embeddings, clusters_to_search=10)
        assert flaky.calls == 2  # primary + the single budgeted retry
        assert result.degraded
        assert flaky_id in result.failed_shards
        stats = next(s for s in result.shard_stats if s.shard_id == flaky_id)
        assert stats.outcome == "retry-budget-exhausted"
        assert budget.exhausted == 1

    def test_primary_attempts_refill_the_bucket(self, clustered, small_queries):
        from repro.core.hierarchical import RetrievalPolicy, RetryBudget

        budget = RetryBudget(capacity=1.0, fill_rate=0.1)
        assert budget.try_spend()
        assert budget.tokens == 0.0
        searcher = HierarchicalSearcher(
            clustered,
            router=CentroidRouter(),
            policy=RetrievalPolicy(max_attempts=2, retry_budget=budget),
        )
        searcher.search(small_queries.embeddings, clusters_to_search=10)
        # 10 healthy primaries deposited 0.1 each: a retry is affordable again.
        assert budget.tokens == pytest.approx(1.0)


class TestDeadlineBudget:
    def test_spent_budget_rejected_at_submit(self, hermes, small_queries):
        from repro.core.errors import DeadlineExceededError

        for budget in (0.0, -1.0):
            with pytest.raises(DeadlineExceededError) as exc:
                hermes.search(small_queries.embeddings, deadline_s=budget)
            assert exc.value.stage == "submit"

    def test_budget_exhausted_by_routing_sheds_before_deep(
        self, clustered, small_queries
    ):
        """Sample search burns the whole budget on the manual clock: the
        search sheds at the route stage, before any deep search launches."""
        import dataclasses

        from repro.core.errors import DeadlineExceededError
        from repro.obs.trace import ManualClock

        clock = ManualClock()
        timed = []
        for s in clustered.shards:
            w = _TimedFlakyShard(s, clock, busy_s=0.05)
            w.calls = 1  # skip the failure branch: every call succeeds
            timed.append(w)
        searcher = HermesSearcher(
            dataclasses.replace(clustered, shards=timed), clock=clock
        )
        # 10 sampling probes x 0.05s = 0.5s of routing against a 0.1s budget.
        with pytest.raises(DeadlineExceededError) as exc:
            searcher.search(small_queries.embeddings, deadline_s=0.1)
        assert exc.value.stage == "route"
        assert all(w.calls == 2 for w in timed)  # sampled once, never deep

    def test_generous_budget_leaves_results_intact(self, hermes, small_queries):
        base = hermes.search(small_queries.embeddings, k=5)
        timed = hermes.search(small_queries.embeddings, k=5, deadline_s=60.0)
        np.testing.assert_array_equal(timed.ids, base.ids)
        np.testing.assert_allclose(timed.distances, base.distances, rtol=1e-5)


class TestProcessWorkersMode:
    """workers_mode="process" fans deep searches out to a worker pool; the
    transport must be invisible in the results."""

    def test_process_mode_is_bit_identical_to_thread_mode(
        self, clustered, small_queries
    ):
        q = small_queries.embeddings
        base = HermesSearcher(clustered).search(q, k=5)
        with HermesSearcher(clustered, workers_mode="process") as searcher:
            assert searcher._shard_pool is None  # pool is lazy
            result = searcher.search(q, k=5)
            assert searcher._shard_pool is not None
        np.testing.assert_array_equal(base.ids, result.ids)
        np.testing.assert_array_equal(base.distances, result.distances)

    def test_mode_defaults_from_config(self, clustered):
        import dataclasses

        cfg = dataclasses.replace(
            HermesSearcher(clustered).config, search_workers_mode="process"
        )
        searcher = HermesSearcher(clustered, config=cfg)
        assert searcher.workers_mode == "process"
        searcher.close()  # no pool was ever spawned: close is a no-op

    def test_invalid_mode_rejected(self, clustered):
        with pytest.raises(ValueError, match="workers_mode"):
            HierarchicalSearcher(clustered, workers_mode="fibers")
