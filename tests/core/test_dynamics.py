"""Tests for online datastore updates and node-failure handling."""

import numpy as np
import pytest

from repro.core.clustering import cluster_datastore
from repro.core.config import HermesConfig
from repro.core.hierarchical import ExhaustiveSplitSearcher, HermesSearcher
from repro.datastore.embeddings import make_corpus
from repro.metrics.ndcg import ndcg


@pytest.fixture()
def fresh_datastore():
    corpus = make_corpus(2000, n_topics=6, dim=32, seed=55)
    config = HermesConfig(n_clusters=6, clusters_to_search=2)
    return corpus, cluster_datastore(corpus.embeddings, config)


class TestAddDocuments:
    def test_new_documents_get_fresh_ids(self, fresh_datastore):
        corpus, datastore = fresh_datastore
        before = datastore.ntotal
        new = corpus.topic_model.sample_documents(50)[0]
        ids = datastore.add_documents(new)
        assert list(ids) == list(range(before, before + 50))
        assert datastore.ntotal == before + 50
        assert len(datastore.assignments) == before + 50

    def test_new_documents_are_retrievable(self, fresh_datastore):
        corpus, datastore = fresh_datastore
        new, _ = corpus.topic_model.sample_documents(20)
        ids = datastore.add_documents(new)
        searcher = HermesSearcher(datastore)
        result = searcher.search(new, k=1, clusters_to_search=6)
        assert (result.ids[:, 0] == ids).mean() > 0.9

    def test_routing_to_topical_shard(self, fresh_datastore):
        corpus, datastore = fresh_datastore
        # New docs land on the shard whose centroid they're nearest — the
        # same shard queries about them route to.
        new, _ = corpus.topic_model.sample_documents(30)
        ids = datastore.add_documents(new)
        added_assignments = datastore.assignments[ids]
        from repro.ann.distances import pairwise_distance

        expected = pairwise_distance(new, datastore.centroids(), "l2").argmin(axis=1)
        # Centroids moved slightly during insertion; most match.
        assert (added_assignments == expected).mean() > 0.8

    def test_centroid_drifts_toward_inserts(self, fresh_datastore):
        corpus, datastore = fresh_datastore
        shard = datastore.shards[0]
        before = shard.centroid.copy()
        # Insert many near-duplicates of an existing member of shard 0.
        member = corpus.embeddings[shard.global_ids[0]]
        clones = np.tile(member, (100, 1)) + 0.01
        datastore.add_documents(clones.astype(np.float32))
        moved = np.linalg.norm(shard.centroid - before)
        assert moved > 0

    def test_dim_mismatch_rejected(self, fresh_datastore):
        _, datastore = fresh_datastore
        with pytest.raises(ValueError, match="dim"):
            datastore.add_documents(np.zeros((3, 7), dtype=np.float32))

    def test_accuracy_preserved_after_growth(self, fresh_datastore):
        corpus, datastore = fresh_datastore
        new, _ = corpus.topic_model.sample_documents(200)
        datastore.add_documents(new)
        all_vectors = np.concatenate([corpus.embeddings, new])
        from repro.baselines.monolithic import MonolithicRetriever

        queries, _ = corpus.topic_model.sample_queries(24, query_spread=0.25)
        mono = MonolithicRetriever(all_vectors)
        _, truth = mono.ground_truth(queries, 5)
        searcher = HermesSearcher(datastore)
        result = searcher.search(queries, clusters_to_search=3)
        assert ndcg(result.ids, truth) > 0.85


class TestNodeFailure:
    def test_search_survives_failed_cluster(self, fresh_datastore):
        corpus, datastore = fresh_datastore
        searcher = HermesSearcher(datastore)
        queries, _ = corpus.topic_model.sample_queries(16, query_spread=0.25)
        result = searcher.search(queries, exclude_clusters={0})
        # Valid results from surviving shards only.
        dead_docs = set(datastore.shards[0].global_ids.tolist())
        assert all(
            int(doc) not in dead_docs for row in result.ids for doc in row if doc >= 0
        )

    def test_failed_cluster_never_routed(self, fresh_datastore):
        corpus, datastore = fresh_datastore
        searcher = HermesSearcher(datastore)
        queries, _ = corpus.topic_model.sample_queries(16)
        result = searcher.search(queries, exclude_clusters={2, 3})
        assert not (np.isin(result.routing.clusters, [2, 3])).any()

    def test_fanout_clamped_to_survivors(self, fresh_datastore):
        corpus, datastore = fresh_datastore
        searcher = HermesSearcher(datastore)
        queries, _ = corpus.topic_model.sample_queries(4)
        result = searcher.search(
            queries, clusters_to_search=6, exclude_clusters={0, 1, 2}
        )
        assert result.routing.fanout == 3

    def test_all_failed_rejected(self, fresh_datastore):
        from repro.core.errors import RetrievalUnavailableError

        corpus, datastore = fresh_datastore
        searcher = HermesSearcher(datastore)
        queries, _ = corpus.topic_model.sample_queries(2)
        with pytest.raises(RetrievalUnavailableError, match="all"):
            searcher.search(queries, exclude_clusters=set(range(6)))

    def test_graceful_accuracy_degradation(self, fresh_datastore):
        corpus, datastore = fresh_datastore
        from repro.baselines.monolithic import MonolithicRetriever

        queries, _ = corpus.topic_model.sample_queries(48, query_spread=0.25)
        mono = MonolithicRetriever(corpus.embeddings)
        _, truth = mono.ground_truth(queries, 5)
        searcher = ExhaustiveSplitSearcher(datastore)
        healthy = ndcg(searcher.search(queries).ids, truth)
        degraded = ndcg(
            searcher.search(queries, exclude_clusters={0}).ids, truth
        )
        # Losing one of six clusters loses roughly its share of the truth,
        # not everything.
        assert degraded < healthy
        assert degraded > healthy - 0.45
