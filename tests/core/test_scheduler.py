"""Tests for the Hermes scheduler."""

import numpy as np
import pytest

from repro.core.hierarchical import HermesSearcher
from repro.core.scheduler import HermesScheduler, routing_to_batch
from repro.hardware.node import NodeCluster
from repro.perfmodel.aggregate import DVFSPolicy


@pytest.fixture()
def scheduler(clustered):
    return HermesScheduler(datastore=clustered, total_tokens=100e9)


@pytest.fixture()
def decision(clustered, small_queries):
    return HermesSearcher(clustered).search(small_queries.embeddings).routing


class TestConstruction:
    def test_default_fleet_matches_clusters(self, scheduler, clustered):
        assert len(scheduler.cluster) == clustered.n_clusters

    def test_shards_sized_by_document_share(self, scheduler, clustered):
        sizes = clustered.sizes()
        tokens = np.array([n.shard_tokens for n in scheduler.cluster])
        assert tokens.sum() == pytest.approx(100e9)
        assert tokens[0] / tokens[1] == pytest.approx(sizes[0] / sizes[1], rel=1e-6)

    def test_fleet_size_mismatch_rejected(self, clustered):
        with pytest.raises(ValueError, match="nodes"):
            HermesScheduler(
                datastore=clustered,
                total_tokens=1e9,
                cluster=NodeCluster.homogeneous(3),
            )

    def test_nonpositive_tokens_rejected(self, clustered):
        with pytest.raises(ValueError):
            HermesScheduler(datastore=clustered, total_tokens=0)


class TestDispatch:
    def test_returns_sample_and_deep(self, scheduler, decision):
        result = scheduler.dispatch(decision)
        assert result.sample is not None
        assert result.latency_s > 0
        assert result.energy_j > 0

    def test_records_trace(self, scheduler, decision):
        scheduler.dispatch(decision)
        scheduler.dispatch(decision)
        assert len(scheduler.trace) == 2

    def test_record_false_skips_trace(self, scheduler, decision):
        scheduler.dispatch(decision, record=False)
        assert len(scheduler.trace) == 0

    def test_hermes_cheaper_than_naive(self, scheduler, decision):
        hermes = scheduler.dispatch(decision)
        naive = scheduler.naive_dispatch(decision.batch_size)
        assert hermes.energy_j < naive.energy_j

    def test_hermes_faster_than_monolithic(self, scheduler, decision):
        hermes = scheduler.dispatch(decision)
        mono = scheduler.monolithic_dispatch(decision.batch_size)
        assert hermes.latency_s < mono.latency_s

    def test_dvfs_baseline_not_worse(self, scheduler, decision):
        none = scheduler.dispatch(decision, record=False)
        base = scheduler.dispatch(decision, dvfs=DVFSPolicy.BASELINE, record=False)
        assert base.energy_j <= none.energy_j * 1.001


class TestDiagnostics:
    def test_mean_loads_shape(self, scheduler, decision):
        scheduler.dispatch(decision)
        loads = scheduler.mean_node_loads()
        assert loads.shape == (10,)
        assert loads.sum() == pytest.approx(decision.batch_size * decision.fanout)

    def test_access_imbalance_finite_after_traffic(self, clustered, small_queries):
        scheduler = HermesScheduler(datastore=clustered, total_tokens=100e9)
        searcher = HermesSearcher(clustered)
        for _ in range(4):
            result = searcher.search(small_queries.embeddings, clusters_to_search=5)
            scheduler.dispatch(result.routing)
        assert np.isfinite(scheduler.access_imbalance())


class TestRoutingConversion:
    def test_roundtrip(self, decision):
        batch = routing_to_batch(decision)
        assert batch.batch_size == decision.batch_size
        assert np.array_equal(batch.clusters, decision.clusters)
