"""Tests for token-level strided RAG sessions."""

import numpy as np
import pytest

from repro.core.clustering import cluster_datastore
from repro.core.config import HermesConfig
from repro.core.hierarchical import HermesSearcher
from repro.core.session import StridedRAGSession
from repro.datastore.chunkstore import ChunkStore
from repro.datastore.corpus import CorpusGenerator, TokenVocabulary, chunk_documents
from repro.datastore.encoder import SyntheticEncoder


@pytest.fixture(scope="module")
def stack():
    vocab = TokenVocabulary(n_topics=5, pool_size=150, common_size=80)
    gen = CorpusGenerator(vocab, doc_tokens=96, topical_fraction=0.8, seed=2)
    docs = gen.generate(250)
    chunks = chunk_documents(docs, chunk_tokens=48)
    encoder = SyntheticEncoder(dim=64, seed=0)
    embeddings = encoder.encode_chunks(chunks)
    datastore = cluster_datastore(
        embeddings, HermesConfig(n_clusters=5, clusters_to_search=2)
    )
    searcher = HermesSearcher(datastore)
    store = ChunkStore(chunks)
    return vocab, searcher, encoder, store


@pytest.fixture()
def session(stack):
    _, searcher, encoder, store = stack
    return StridedRAGSession(searcher, encoder, store, stride_tokens=16, seed=1)


def topic_query(vocab, topic, n=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.choice(vocab.topic_pool(topic), size=n, replace=False)


class TestSessionMechanics:
    def test_runs_requested_strides(self, stack, session):
        vocab = stack[0]
        trace = session.run(topic_query(vocab, 0), n_strides=6)
        assert trace.n_strides == 6
        assert all(len(s.generated_tokens) == 16 for s in trace.steps)

    def test_deterministic_for_seed(self, stack):
        vocab, searcher, encoder, store = stack
        a = StridedRAGSession(searcher, encoder, store, seed=3).run(
            topic_query(vocab, 1), n_strides=4
        )
        b = StridedRAGSession(searcher, encoder, store, seed=3).run(
            topic_query(vocab, 1), n_strides=4
        )
        for sa, sb in zip(a.steps, b.steps):
            assert np.array_equal(sa.retrieved_ids, sb.retrieved_ids)
            assert np.array_equal(sa.generated_tokens, sb.generated_tokens)

    def test_validation(self, stack, session):
        vocab = stack[0]
        with pytest.raises(ValueError):
            session.run(np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            session.run(topic_query(vocab, 0), n_strides=0)
        _, searcher, encoder, store = stack
        with pytest.raises(ValueError):
            StridedRAGSession(searcher, encoder, store, grounding=1.5)


class TestSessionAnalyses:
    def test_topical_queries_retrieve_stably(self, stack, session):
        vocab = stack[0]
        trace = session.run(topic_query(vocab, 2), n_strides=8)
        # Grounded generation keeps the query in-topic, so consecutive
        # strides mostly re-route to the same clusters...
        assert trace.routing_stability() > 0.6
        # ...and RAGCache's overlap premise holds to a substantial degree.
        assert trace.document_overlap() > 0.3

    def test_high_grounding_increases_overlap(self, stack):
        vocab, searcher, encoder, store = stack
        drifty = StridedRAGSession(
            searcher, encoder, store, grounding=0.1, seed=5
        ).run(topic_query(vocab, 3), n_strides=8)
        grounded = StridedRAGSession(
            searcher, encoder, store, grounding=0.9, seed=5
        ).run(topic_query(vocab, 3), n_strides=8)
        assert grounded.document_overlap() >= drifty.document_overlap() - 0.1

    def test_generated_tokens_stay_topical(self, stack, session):
        vocab = stack[0]
        trace = session.run(topic_query(vocab, 4), n_strides=8)
        tokens = trace.all_generated_tokens()
        topics = [vocab.topic_of_token(int(t)) for t in tokens]
        topical = [t for t in topics if t >= 0]
        assert topical
        assert np.bincount(topical, minlength=5).argmax() == 4

    def test_overlap_requires_two_strides(self, stack, session):
        vocab = stack[0]
        trace = session.run(topic_query(vocab, 0), n_strides=1)
        with pytest.raises(ValueError):
            trace.document_overlap()
        with pytest.raises(ValueError):
            trace.routing_stability()


class TestRoutingReuse:
    def make_session(self, stack, **kwargs):
        _, searcher, encoder, store = stack
        return StridedRAGSession(
            searcher, encoder, store, stride_tokens=16, seed=1, **kwargs
        )

    def test_reuse_skips_sample_search(self, stack):
        vocab = stack[0]
        trace = self.make_session(stack, reuse_routing=True).run(
            topic_query(vocab, 0), n_strides=10
        )
        assert trace.routing_reuse_fraction > 0
        # The first stride has no previous routing to reuse, and reuse only
        # starts after two fresh routings agree.
        assert not trace.steps[0].routing_reused
        assert not trace.steps[1].routing_reused

    def test_reuse_bounded_by_max_routing_reuse(self, stack):
        vocab = stack[0]
        trace = self.make_session(
            stack, reuse_routing=True, max_routing_reuse=2
        ).run(topic_query(vocab, 1), n_strides=12)
        run_length = 0
        for step in trace.steps:
            run_length = run_length + 1 if step.routing_reused else 0
            assert run_length <= 2

    def test_disabled_by_default(self, stack):
        vocab = stack[0]
        trace = self.make_session(stack).run(topic_query(vocab, 2), n_strides=8)
        assert trace.routing_reuse_fraction == 0.0

    def test_validation(self, stack):
        with pytest.raises(ValueError):
            self.make_session(stack, routing_stability_threshold=1.5)
        with pytest.raises(ValueError):
            self.make_session(stack, max_routing_reuse=0)


class TestPrefixCacheReplay:
    def test_measured_hit_rate_matches_offline_replay(self, stack):
        from repro.baselines.ragcache import simulate_cache_hit_rate
        from repro.llm.kvcache import PrefixCache

        vocab, searcher, encoder, store = stack
        capacity = 1_000_000  # big enough that nothing evicts
        session = StridedRAGSession(
            searcher,
            encoder,
            store,
            stride_tokens=16,
            seed=1,
            prefix_cache=PrefixCache(capacity=capacity),
        )
        trace = session.run(topic_query(vocab, 3), n_strides=8)
        assert trace.measured_prefix_hit_rate is not None
        offline = simulate_cache_hit_rate(trace.stride_results(), capacity=capacity)
        assert trace.measured_prefix_hit_rate == pytest.approx(offline)

    def test_not_measured_without_cache(self, stack):
        vocab = stack[0]
        _, searcher, encoder, store = stack
        trace = StridedRAGSession(searcher, encoder, store, seed=1).run(
            topic_query(vocab, 0), n_strides=4
        )
        assert trace.prefix_stats is None
        assert trace.measured_prefix_hit_rate is None
