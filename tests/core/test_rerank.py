"""Tests for candidate reranking."""

import numpy as np
import pytest

from repro.core.rerank import CrossInteractionReranker, SimilarityReranker
from repro.datastore.chunkstore import ChunkStore
from repro.datastore.corpus import Chunk


@pytest.fixture()
def vectors():
    rng = np.random.default_rng(0)
    v = rng.normal(size=(20, 8)).astype(np.float32)
    return v / np.linalg.norm(v, axis=1, keepdims=True)


class TestSimilarityReranker:
    def test_orders_by_inner_product(self, vectors):
        reranker = SimilarityReranker(vectors)
        query = vectors[3]
        out = reranker.rerank(query, np.array([7, 3, 11]))
        assert out[0] == 3  # the query's own vector wins

    def test_padding_kept_last(self, vectors):
        reranker = SimilarityReranker(vectors)
        out = reranker.rerank(vectors[0], np.array([5, -1, 2, -1]))
        assert list(out[-2:]) == [-1, -1]
        assert set(out[:2]) == {5, 2}

    def test_all_padding_passthrough(self, vectors):
        reranker = SimilarityReranker(vectors)
        out = reranker.rerank(vectors[0], np.array([-1, -1]))
        assert (out == -1).all()

    def test_top_n(self, vectors):
        reranker = SimilarityReranker(vectors)
        out = reranker.top(vectors[1], np.array([1, 2, 3]), 1)
        assert len(out) == 1 and out[0] == 1
        with pytest.raises(ValueError):
            reranker.top(vectors[1], np.array([1]), 0)


class TestCrossInteractionReranker:
    @pytest.fixture()
    def setup(self, vectors):
        chunks = [
            Chunk(chunk_id=i, doc_id=i, topic=0,
                  tokens=np.array([i * 10, i * 10 + 1, 500]))
            for i in range(20)
        ]
        store = ChunkStore(chunks)
        return vectors, store

    def test_exact_token_match_promotes(self, setup):
        vectors, store = setup
        reranker = CrossInteractionReranker(vectors, store, alpha=0.3)
        # Candidates 4 and 9 are embedding-equidistant (we use candidate 4's
        # rare tokens in the query, so token evidence should decide).
        query_emb = (vectors[4] + vectors[9]) / 2
        query_tokens = np.array([40, 41])  # candidate 4's rare tokens
        out = reranker.rerank_with_tokens(query_emb, query_tokens, np.array([9, 4]))
        assert out[0] == 4

    def test_common_token_carries_little_weight(self, setup):
        vectors, store = setup
        reranker = CrossInteractionReranker(vectors, store, alpha=0.0)
        # Token 500 appears in every chunk: matching it should not break the
        # tie meaningfully vs a rare-token match.
        query_tokens_rare = np.array([70, 71])
        out = reranker.rerank_with_tokens(
            vectors[0] * 0, query_tokens_rare, np.array([3, 7])
        )
        assert out[0] == 7

    def test_alpha_one_equals_similarity(self, setup):
        vectors, store = setup
        cross = CrossInteractionReranker(vectors, store, alpha=1.0)
        sim = SimilarityReranker(vectors)
        cands = np.array([2, 5, 8])
        a = cross.rerank_with_tokens(vectors[5], np.array([999]), cands)
        b = sim.rerank(vectors[5], cands)
        assert np.array_equal(a, b)

    def test_alpha_validated(self, setup):
        vectors, store = setup
        with pytest.raises(ValueError):
            CrossInteractionReranker(vectors, store, alpha=1.5)

    def test_fallback_without_tokens(self, setup):
        vectors, store = setup
        reranker = CrossInteractionReranker(vectors, store)
        out = reranker.rerank(vectors[2], np.array([1, 2]))
        assert out[0] == 2
