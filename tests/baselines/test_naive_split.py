"""Tests for the naive broadcast-split baseline."""

import numpy as np
import pytest

from repro.baselines.monolithic import MonolithicRetriever
from repro.baselines.naive_split import NaiveSplitRetriever
from repro.metrics.recall import recall_at_k


@pytest.fixture(scope="module")
def split(small_corpus):
    return NaiveSplitRetriever(small_corpus.embeddings)


class TestStructure:
    def test_default_ten_shards(self, split):
        assert split.n_shards == 10

    def test_shards_nearly_equal(self, split):
        sizes = split.datastore.sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_random_shards_mix_topics(self, split, small_corpus):
        # Each shard should contain documents from many latent topics.
        for shard in split.datastore.shards:
            topics = small_corpus.topics[shard.global_ids]
            assert len(np.unique(topics)) >= 8


class TestBroadcastSearch:
    def test_matches_monolithic_recall(self, split, small_corpus, small_queries):
        # Searching all shards recovers near-exact quality.
        mono = MonolithicRetriever(small_corpus.embeddings)
        q = small_queries.embeddings
        _, truth = mono.ground_truth(q, 5)
        result = split.search(q, 5)
        assert recall_at_k(result.ids, truth) > 0.9

    def test_search_touches_all_shards(self, split, small_queries):
        result = split.search(small_queries.embeddings, 5)
        assert result.routing.fanout == split.n_shards

    def test_shard_queries_counts_broadcast(self, split, small_queries):
        result = split.search(small_queries.embeddings, 5)
        assert result.shard_queries == len(small_queries) * split.n_shards

    def test_global_ids_valid(self, split, small_corpus, small_queries):
        result = split.search(small_queries.embeddings, 5)
        assert (result.ids >= 0).all()
        assert (result.ids < len(small_corpus)).all()
