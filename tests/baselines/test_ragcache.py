"""Tests for the RAGCache baseline helpers."""

import numpy as np
import pytest

from repro.baselines.ragcache import (
    combined_config,
    ragcache_config,
    simulate_cache_hit_rate,
    stride_overlap_fraction,
)
from repro.llm.generation import GenerationConfig


class TestConfigs:
    def test_ragcache_sets_caching_only(self):
        cfg = ragcache_config(GenerationConfig())
        assert cfg.prefix_cached and not cfg.pipelined

    def test_combined_sets_both(self):
        cfg = combined_config(GenerationConfig())
        assert cfg.prefix_cached and cfg.pipelined


class TestStrideOverlap:
    def test_identical_strides_full_overlap(self):
        strides = [np.array([1, 2, 3])] * 3
        assert stride_overlap_fraction(strides) == 1.0

    def test_disjoint_strides_zero_overlap(self):
        strides = [np.array([1, 2]), np.array([3, 4]), np.array([5, 6])]
        assert stride_overlap_fraction(strides) == 0.0

    def test_partial_overlap(self):
        strides = [np.array([1, 2]), np.array([2, 3])]
        assert stride_overlap_fraction(strides) == 0.5

    def test_padding_ignored(self):
        strides = [np.array([1, -1]), np.array([1, -1])]
        assert stride_overlap_fraction(strides) == 1.0

    def test_needs_two_strides(self):
        with pytest.raises(ValueError):
            stride_overlap_fraction([np.array([1])])


class TestSimulatedHitRate:
    def test_repeated_docs_hit(self):
        strides = [np.array([1, 2, 3])] * 4
        rate = simulate_cache_hit_rate(strides)
        # 3 cold misses, 9 hits.
        assert rate == pytest.approx(9 / 12)

    def test_capacity_limits_hits(self):
        strides = [np.arange(100), np.arange(100)]
        unlimited = simulate_cache_hit_rate(strides, capacity=200)
        tiny = simulate_cache_hit_rate(strides, capacity=10)
        assert unlimited > tiny

    def test_fresh_docs_never_hit(self):
        strides = [np.arange(10), np.arange(10, 20)]
        assert simulate_cache_hit_rate(strides) == 0.0
