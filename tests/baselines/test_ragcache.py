"""Tests for the RAGCache baseline helpers."""

import numpy as np
import pytest

from repro.baselines.ragcache import (
    combined_config,
    ragcache_config,
    simulate_cache_hit_rate,
    stride_overlap_fraction,
)
from repro.llm.generation import GenerationConfig


class TestConfigs:
    def test_ragcache_sets_caching_only(self):
        cfg = ragcache_config(GenerationConfig())
        assert cfg.prefix_cached and not cfg.pipelined

    def test_combined_sets_both(self):
        cfg = combined_config(GenerationConfig())
        assert cfg.prefix_cached and cfg.pipelined


class TestStrideOverlap:
    def test_identical_strides_full_overlap(self):
        strides = [np.array([1, 2, 3])] * 3
        assert stride_overlap_fraction(strides) == 1.0

    def test_disjoint_strides_zero_overlap(self):
        strides = [np.array([1, 2]), np.array([3, 4]), np.array([5, 6])]
        assert stride_overlap_fraction(strides) == 0.0

    def test_partial_overlap(self):
        strides = [np.array([1, 2]), np.array([2, 3])]
        assert stride_overlap_fraction(strides) == 0.5

    def test_padding_ignored(self):
        strides = [np.array([1, -1]), np.array([1, -1])]
        assert stride_overlap_fraction(strides) == 1.0

    def test_needs_two_strides(self):
        with pytest.raises(ValueError):
            stride_overlap_fraction([np.array([1])])


class TestSimulatedHitRate:
    def test_repeated_docs_hit(self):
        strides = [np.array([1, 2, 3])] * 4
        rate = simulate_cache_hit_rate(strides)
        # 3 cold misses, 9 hits.
        assert rate == pytest.approx(9 / 12)

    def test_capacity_limits_hits(self):
        strides = [np.arange(100), np.arange(100)]
        unlimited = simulate_cache_hit_rate(strides, capacity=200)
        tiny = simulate_cache_hit_rate(strides, capacity=10)
        assert unlimited > tiny

    def test_fresh_docs_never_hit(self):
        strides = [np.arange(10), np.arange(10, 20)]
        assert simulate_cache_hit_rate(strides) == 0.0


def _reference_overlap(stride_results):
    """The pre-vectorization per-pair set implementation."""
    overlaps = []
    for prev, cur in zip(stride_results, stride_results[1:]):
        prev_set = {int(d) for d in np.asarray(prev).ravel() if d >= 0}
        cur_ids = [int(d) for d in np.asarray(cur).ravel() if d >= 0]
        if not cur_ids:
            continue
        overlaps.append(sum(d in prev_set for d in cur_ids) / len(cur_ids))
    if not overlaps:
        raise ValueError("no valid documents in stride results")
    return float(np.mean(overlaps))


class TestStrideOverlapVectorization:
    def test_ragged_strides_supported(self):
        strides = [
            np.array([1, 2, 3]),
            np.array([2, 3]),
            np.array([3, 4, 5, 6]),
        ]
        assert stride_overlap_fraction(strides) == pytest.approx(
            _reference_overlap(strides)
        )

    def test_uniform_matches_reference_randomized(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            n_strides = int(rng.integers(2, 6))
            k = int(rng.integers(1, 8))
            strides = [rng.integers(0, 12, size=k) for _ in range(n_strides)]
            # Sprinkle -1 padding, keeping at least one valid id per stride.
            for s in strides:
                if k > 1:
                    s[rng.random(k) < 0.25] = -1
                    s[0] = abs(s[0])
            assert stride_overlap_fraction(strides) == pytest.approx(
                _reference_overlap(strides)
            ), trial

    def test_all_padding_rejected(self):
        with pytest.raises(ValueError):
            stride_overlap_fraction([np.array([-1, -1]), np.array([-1, -1])])
