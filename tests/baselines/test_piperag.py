"""Tests for the PipeRAG baseline helpers."""

import pytest

from repro.baselines.piperag import adaptive_nprobe, piperag_config, quality_proxy
from repro.llm.generation import GenerationConfig
from repro.perfmodel.measurements import RetrievalCostModel


class TestConfig:
    def test_sets_pipelining_only(self):
        cfg = piperag_config(GenerationConfig())
        assert cfg.pipelined and not cfg.prefix_cached

    def test_preserves_other_fields(self):
        cfg = piperag_config(GenerationConfig(batch=64, stride=8))
        assert cfg.batch == 64 and cfg.stride == 8


class TestAdaptiveNprobe:
    def test_full_depth_when_retrieval_fits(self):
        cost = RetrievalCostModel()
        nprobe = adaptive_nprobe(cost, 100e6, 32, inference_window_s=0.7)
        assert nprobe == 128

    def test_shrinks_on_large_datastores(self):
        # The paper's criticism: at scale PipeRAG must sacrifice nProbe.
        cost = RetrievalCostModel()
        nprobe = adaptive_nprobe(cost, 1e12, 32, inference_window_s=0.7)
        assert nprobe < 128

    def test_monotone_in_datastore_size(self):
        cost = RetrievalCostModel()
        values = [
            adaptive_nprobe(cost, tokens, 32, inference_window_s=0.7)
            for tokens in (1e9, 10e9, 100e9, 1e12)
        ]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_floors_at_min_nprobe(self):
        cost = RetrievalCostModel()
        nprobe = adaptive_nprobe(cost, 1e15, 32, inference_window_s=0.1)
        assert nprobe == 1

    def test_chosen_nprobe_actually_fits_when_above_floor(self):
        cost = RetrievalCostModel()
        window = 0.7
        nprobe = adaptive_nprobe(cost, 1e12, 32, inference_window_s=window)
        if nprobe > 1:
            assert cost.batch_latency(1e12, 32, nprobe=nprobe) <= window * 1.05

    def test_validation(self):
        cost = RetrievalCostModel()
        with pytest.raises(ValueError):
            adaptive_nprobe(cost, 1e9, 32, inference_window_s=0)
        with pytest.raises(ValueError):
            adaptive_nprobe(cost, 1e9, 32, inference_window_s=1, min_nprobe=0)


class TestQualityProxy:
    def test_monotone(self):
        values = [quality_proxy(n) for n in (1, 8, 32, 128)]
        assert values == sorted(values)

    def test_reference_is_one(self):
        assert quality_proxy(128) == pytest.approx(1.0)

    def test_capped_above_reference(self):
        assert quality_proxy(512) == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            quality_proxy(0)
