"""Tests for the monolithic retrieval baseline."""

import numpy as np
import pytest

from repro.baselines.monolithic import MonolithicRetriever
from repro.metrics.ndcg import ndcg
from repro.metrics.recall import recall_at_k


@pytest.fixture(scope="module")
def retriever(small_corpus):
    return MonolithicRetriever(small_corpus.embeddings)


class TestConstruction:
    def test_indexes_everything(self, retriever, small_corpus):
        assert retriever.ntotal == len(small_corpus)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MonolithicRetriever(np.empty((0, 8), dtype=np.float32))

    def test_memory_reported(self, retriever):
        assert retriever.memory_bytes() > 0


class TestQuality:
    def test_high_ndcg_at_production_nprobe(self, retriever, small_queries):
        q = small_queries.embeddings
        _, truth = retriever.ground_truth(q, 5)
        _, ids = retriever.search(q, 5)
        assert ndcg(ids, truth) > 0.95

    def test_ground_truth_is_exact(self, retriever, small_corpus):
        # Querying with stored vectors returns themselves first.
        _, ids = retriever.ground_truth(small_corpus.embeddings[:10], 1)
        assert list(ids[:, 0]) == list(range(10))

    def test_nprobe_override_trades_recall(self, retriever, small_queries):
        q = small_queries.embeddings
        _, truth = retriever.ground_truth(q, 5)
        _, shallow = retriever.search(q, 5, nprobe=1)
        _, deep = retriever.search(q, 5, nprobe=128)
        assert recall_at_k(deep, truth) >= recall_at_k(shallow, truth)
