"""Tests for admission control, deadline shedding, and the brownout ladder."""

import threading
import time

import numpy as np
import pytest

from repro.core.errors import AdmissionRejectedError, DeadlineExceededError
from repro.core.hierarchical import HermesSearcher
from repro.serving.admission import (
    DEFAULT_LADDER,
    AdmissionConfig,
    AdmissionController,
    BrownoutKnobs,
)
from repro.serving.cache import EXACT_HIT, MISS, CacheConfig
from repro.serving.frontend import DynamicBatcher, FrontendResult, ServingFrontend


@pytest.fixture(scope="module")
def searcher(clustered):
    return HermesSearcher(clustered)


@pytest.fixture(scope="module")
def queries(small_queries):
    return small_queries.embeddings


def exact_only_frontend(searcher, capacity=64):
    return ServingFrontend(
        searcher,
        cache_config=CacheConfig(
            capacity=capacity, semantic_threshold=None, routing_threshold=None
        ),
    )


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class _StubFrontend:
    """Frontend double: records search kwargs; an optional gate blocks the worker."""

    def __init__(self, k=5):
        self.k = k
        self.gate = threading.Event()
        self.gate.set()
        self.calls = []

    def search(
        self,
        queries,
        *,
        k=None,
        clusters_to_search=None,
        deep_nprobe=None,
        deadline_s=None,
        brownout=None,
        degradation_level=0,
    ):
        self.gate.wait(10)
        self.calls.append(
            {
                "n": len(queries),
                "deadline_s": deadline_s,
                "brownout": brownout,
                "level": degradation_level,
            }
        )
        nq = len(queries)
        kk = self.k if k is None else int(k)
        return FrontendResult(
            distances=np.zeros((nq, kk), dtype=np.float32),
            ids=np.zeros((nq, kk), dtype=np.int64),
            kinds=np.zeros(nq, dtype=np.int8),
            searched=nq,
            shard_queries=nq,
            degradation_level=degradation_level,
        )


class TestBrownoutKnobs:
    def test_apply_scales_and_floors(self):
        assert BrownoutKnobs().apply(3, 8) == (3, 8)
        assert BrownoutKnobs(m_scale=0.34, nprobe_scale=0.25).apply(3, 4) == (1, 1)
        assert BrownoutKnobs(m_scale=0.67, nprobe_scale=0.5).apply(6, 8) == (4, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutKnobs(semantic_slack=-0.1)
        with pytest.raises(ValueError):
            BrownoutKnobs(m_scale=0.0)
        with pytest.raises(ValueError):
            BrownoutKnobs(nprobe_scale=1.5)

    def test_default_ladder_is_monotone(self):
        slacks = [k.semantic_slack for k in DEFAULT_LADDER]
        assert slacks == sorted(slacks)
        scales = [k.m_scale for k in DEFAULT_LADDER]
        assert scales == sorted(scales, reverse=True)


class TestAdmissionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionConfig(default_deadline_s=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(delay_target_s=0.0)
        # Hysteresis: clearing must be at least as slow as escalating.
        with pytest.raises(ValueError):
            AdmissionConfig(escalate_after_s=0.2, clear_after_s=0.1)
        with pytest.raises(TypeError):
            AdmissionConfig(ladder=("not knobs",))
        with pytest.raises(ValueError):
            AdmissionConfig(service_ewma_alpha=0.0)

    def test_max_level_tracks_ladder(self):
        assert AdmissionConfig().max_level == len(DEFAULT_LADDER)
        assert AdmissionConfig(ladder=(BrownoutKnobs(),)).max_level == 1


class TestAdmissionController:
    def test_admit_rejects_full_queue(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=2))
        ctl.admit(0)
        ctl.admit(1)
        with pytest.raises(AdmissionRejectedError) as exc:
            ctl.admit(2)
        assert exc.value.queue_depth == 2 and exc.value.max_queue == 2
        assert ctl.rejected == 1

    def test_deadline_resolution(self):
        ctl = AdmissionController(AdmissionConfig(default_deadline_s=0.5))
        assert ctl.deadline_for(None) == 0.5
        assert ctl.deadline_for(0.1) == 0.1
        assert AdmissionController().deadline_for(None) is None

    def test_should_shed_conservative_before_estimate(self):
        ctl = AdmissionController()
        assert not ctl.should_shed(None)
        assert ctl.should_shed(0.0) and ctl.should_shed(-1.0)
        # No EWMA yet: a positive budget is never shed.
        assert not ctl.should_shed(1e-9)

    def test_should_shed_tracks_service_ewma(self):
        ctl = AdmissionController(AdmissionConfig(service_ewma_alpha=0.5))
        ctl.record_service_time(0.1)
        assert ctl.service_estimate_s == pytest.approx(0.1)
        ctl.record_service_time(0.2)
        assert ctl.service_estimate_s == pytest.approx(0.15)
        assert ctl.should_shed(0.1)
        assert not ctl.should_shed(0.2)

    def test_single_spike_does_not_escalate(self):
        clock = FakeClock()
        ctl = AdmissionController(clock=clock)
        assert ctl.observe(10.0) == 0

    def test_escalation_one_step_per_window(self):
        clock = FakeClock()
        cfg = AdmissionConfig(
            delay_target_s=0.01, escalate_after_s=0.1, clear_after_s=0.3
        )
        ctl = AdmissionController(cfg, clock=clock)
        assert ctl.observe(0.02) == 0  # opens the above-target window
        clock.advance(0.05)
        assert ctl.observe(0.02) == 0  # window not yet elapsed
        clock.advance(0.05)
        assert ctl.observe(0.02) == 1
        assert ctl.observe(0.02) == 1  # window restarted: no double step
        clock.advance(0.1)
        assert ctl.observe(0.02) == 2
        clock.advance(0.1)
        assert ctl.observe(0.02) == 3
        clock.advance(1.0)
        assert ctl.observe(0.02) == 3  # capped at max_level

    def test_clearing_needs_longer_quiet_period(self):
        clock = FakeClock()
        cfg = AdmissionConfig(
            delay_target_s=0.01, escalate_after_s=0.1, clear_after_s=0.3
        )
        ctl = AdmissionController(cfg, clock=clock)
        ctl.observe(0.02)
        clock.advance(0.1)
        assert ctl.observe(0.02) == 1
        assert ctl.observe(0.001) == 1  # opens the below-target window
        clock.advance(0.2)
        assert ctl.observe(0.001) == 1  # escalate_after quiet is not enough
        clock.advance(0.1)
        assert ctl.observe(0.001) == 0  # clear_after quiet de-escalates

    def test_spike_resets_quiet_window(self):
        clock = FakeClock()
        cfg = AdmissionConfig(
            delay_target_s=0.01, escalate_after_s=0.1, clear_after_s=0.3
        )
        ctl = AdmissionController(cfg, clock=clock)
        ctl.observe(0.02)
        clock.advance(0.1)
        assert ctl.observe(0.02) == 1
        ctl.observe(0.001)
        clock.advance(0.25)
        ctl.observe(0.02)  # spike: the quiet window restarts
        ctl.observe(0.001)
        clock.advance(0.25)
        assert ctl.observe(0.001) == 1  # still not cleared

    def test_knobs_mapping(self):
        ctl = AdmissionController()
        assert ctl.knobs(0) == BrownoutKnobs()
        assert ctl.knobs(1) == DEFAULT_LADDER[0]
        assert ctl.knobs(3) == DEFAULT_LADDER[2]
        assert ctl.knobs(99) == DEFAULT_LADDER[-1]  # clamped

    def test_reset(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=1))
        with pytest.raises(AdmissionRejectedError):
            ctl.admit(1)
        ctl.record_shed()
        ctl.record_service_time(0.1)
        ctl.reset()
        assert ctl.rejected == 0 and ctl.shed == 0
        assert ctl.service_estimate_s is None and ctl.level == 0


class TestBatcherAdmission:
    def test_bounded_queue_rejects_fail_fast(self):
        stub = _StubFrontend()
        stub.gate.clear()  # block the worker inside frontend.search
        q = np.zeros(8, dtype=np.float32)
        batcher = DynamicBatcher(
            stub,
            max_batch=1,
            max_wait_s=0.0,
            admission=AdmissionConfig(max_queue=2),
        )
        try:
            accepted = []
            with pytest.raises(AdmissionRejectedError):
                for _ in range(10):
                    accepted.append(batcher.submit(q, k=5))
            # Worker holds at most one in-flight request, so rejection hits
            # by the fourth submit at the latest.
            assert 2 <= len(accepted) <= 3
            assert batcher.stats.rejected == 1
            stub.gate.set()
            for f in accepted:
                assert f.result(timeout=10).kind == MISS
        finally:
            stub.gate.set()
            batcher.close()

    def test_spent_deadline_rejected_at_submit(self):
        stub = _StubFrontend()
        with DynamicBatcher(stub, admission=AdmissionConfig()) as batcher:
            with pytest.raises(DeadlineExceededError) as exc:
                batcher.submit(np.zeros(4, dtype=np.float32), deadline_s=0.0)
            assert exc.value.stage == "submit"
        # Without admission control an explicit spent deadline still rejects.
        with DynamicBatcher(_StubFrontend()) as batcher:
            with pytest.raises(DeadlineExceededError):
                batcher.submit(np.zeros(4, dtype=np.float32), deadline_s=-1.0)

    def test_default_deadline_propagates_to_search(self):
        stub = _StubFrontend()
        with DynamicBatcher(
            stub, max_wait_s=0.0, admission=AdmissionConfig(default_deadline_s=5.0)
        ) as batcher:
            batcher.submit(np.zeros(4, dtype=np.float32), k=5).result(timeout=10)
        budget = stub.calls[0]["deadline_s"]
        assert budget is not None and 0 < budget <= 5.0

    def test_expired_request_shed_at_dequeue(self):
        stub = _StubFrontend()
        stub.gate.clear()
        q = np.zeros(4, dtype=np.float32)
        batcher = DynamicBatcher(
            stub, max_batch=1, max_wait_s=0.0, admission=AdmissionConfig(max_queue=8)
        )
        try:
            ok = batcher.submit(q, k=5)  # no deadline: taken first, blocks
            doomed = batcher.submit(q, k=5, deadline_s=0.05)
            time.sleep(0.2)  # the doomed request expires while queued
            stub.gate.set()
            assert ok.result(timeout=10).kind == MISS
            with pytest.raises(DeadlineExceededError) as exc:
                doomed.result(timeout=10)
            assert exc.value.stage == "queue"
            assert batcher.stats.shed == 1
            assert batcher.admission.shed == 1
        finally:
            stub.gate.set()
            batcher.close()

    def test_brownout_level_reaches_search_and_result(self):
        fake = FakeClock()
        cfg = AdmissionConfig(
            delay_target_s=0.001, escalate_after_s=0.01, clear_after_s=100.0
        )
        ctl = AdmissionController(cfg, clock=fake)
        ctl.observe(1.0)
        fake.advance(0.02)
        assert ctl.observe(1.0) == 1  # force level 1; frozen clock keeps it
        stub = _StubFrontend()
        with DynamicBatcher(stub, max_wait_s=0.0, admission=ctl) as batcher:
            served = batcher.submit(np.zeros(4, dtype=np.float32), k=5).result(
                timeout=10
            )
        assert served.degradation_level == 1
        call = stub.calls[0]
        assert call["level"] == 1
        assert call["brownout"] == DEFAULT_LADDER[0]


class TestBrownoutFrontend:
    def test_brownout_shrinks_deep_search(self, searcher, queries):
        q = queries[:4]
        full = exact_only_frontend(searcher).search(q, k=5, clusters_to_search=3)
        degraded = exact_only_frontend(searcher).search(
            q, k=5, clusters_to_search=3, brownout=BrownoutKnobs(m_scale=0.34)
        )
        assert full.shard_queries == 4 * 3
        assert degraded.shard_queries == 4 * 1

    def test_degraded_results_cached_under_effective_key(self, searcher, queries):
        q = queries[:3]
        knobs = BrownoutKnobs(m_scale=0.34)
        frontend = exact_only_frontend(searcher)
        first = frontend.search(q, k=5, clusters_to_search=3, brownout=knobs)
        assert (first.kinds == MISS).all()
        # A full-quality request must not be served the degraded entry.
        full = frontend.search(q, k=5, clusters_to_search=3)
        assert (full.kinds == MISS).all()
        # ... but an equally-degraded repeat hits it exactly.
        again = frontend.search(q, k=5, clusters_to_search=3, brownout=knobs)
        assert (again.kinds == EXACT_HIT).all()
        assert np.array_equal(again.ids, first.ids)

    def test_frontend_spent_budget_rejected(self, searcher, queries):
        frontend = exact_only_frontend(searcher)
        with pytest.raises(DeadlineExceededError) as exc:
            frontend.search(queries[:2], k=5, deadline_s=0.0)
        assert exc.value.stage == "submit"

    def test_generous_budget_leaves_results_intact(self, searcher, queries):
        q = queries[:6]
        direct = searcher.search(q, k=5)
        res = exact_only_frontend(searcher).search(q, k=5, deadline_s=60.0)
        assert np.array_equal(res.ids, direct.ids)
