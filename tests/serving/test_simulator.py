"""Tests for the serving pipeline simulator, cross-validated against the
closed-form analytical model."""

import numpy as np
import pytest

from repro.datastore.embeddings import zipf_weights
from repro.llm.generation import GenerationConfig, steady_state_throughput_qps
from repro.llm.inference import InferenceModel
from repro.perfmodel.aggregate import expected_deep_loads
from repro.serving import PipelineSimulator, StagePlan, plan_from_models


def small_plan(**overrides):
    defaults = dict(
        encode_s=0.1,
        sample_seconds=np.array([0.05, 0.05, 0.05]),
        deep_seconds=np.array([0.3, 0.2, 0.0]),
        first_prefill_s=0.4,
        later_prefill_s=0.4,
        decode_stride_s=0.5,
        n_strides=2,
    )
    defaults.update(overrides)
    return StagePlan(**defaults)


class TestStagePlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            small_plan(n_strides=0)
        with pytest.raises(ValueError):
            small_plan(deep_seconds=np.array([0.1]))

    def test_plan_from_models_shapes(self):
        cfg = GenerationConfig(batch=64)
        loads = expected_deep_loads(64, zipf_weights(10, exponent=0.45), 3)
        plan = plan_from_models(cfg, shard_tokens=[1e9] * 10, deep_loads=loads)
        assert plan.n_nodes == 10
        assert plan.n_strides == cfg.n_strides
        assert (plan.sample_seconds > 0).all()
        assert (plan.deep_seconds >= 0).all()

    def test_prefix_cached_plan_shrinks_later_prefill(self):
        cfg = GenerationConfig(batch=64, prefix_cached=True)
        loads = expected_deep_loads(64, zipf_weights(10, exponent=0.45), 3)
        plan = plan_from_models(cfg, shard_tokens=[1e9] * 10, deep_loads=loads)
        assert plan.later_prefill_s < plan.first_prefill_s

    def test_mismatched_loads_rejected(self):
        cfg = GenerationConfig(batch=64)
        with pytest.raises(ValueError, match="equal length"):
            plan_from_models(cfg, shard_tokens=[1e9] * 10, deep_loads=np.ones(3))


class TestSingleBatch:
    def test_latency_is_sum_of_stages(self):
        plan = small_plan()
        sim = PipelineSimulator(plan, batch_size=8)
        report = sim.run(1)
        per_stride = 0.05 + 0.3 + 0.4 + 0.5  # sample + slowest deep + gpu
        expected = 0.1 + 2 * per_stride
        assert report.batches[0].latency_s == pytest.approx(expected)

    def test_ttft_is_first_stride_prefill_end(self):
        plan = small_plan()
        report = PipelineSimulator(plan, batch_size=8).run(1)
        assert report.batches[0].ttft_s == pytest.approx(0.1 + 0.05 + 0.3 + 0.4)

    def test_retrieval_phase_gated_by_slowest_node(self):
        plan = small_plan(deep_seconds=np.array([0.1, 0.9, 0.0]))
        report = PipelineSimulator(plan, batch_size=8).run(1)
        assert report.batches[0].latency_s == pytest.approx(
            0.1 + 2 * (0.05 + 0.9 + 0.4 + 0.5)
        )

    def test_empty_deep_phase_skipped(self):
        plan = small_plan(deep_seconds=np.zeros(3))
        report = PipelineSimulator(plan, batch_size=8).run(1)
        assert report.batches[0].latency_s == pytest.approx(0.1 + 2 * (0.05 + 0.9))


class TestPipelining:
    def test_two_batches_overlap(self):
        plan = small_plan()
        solo = PipelineSimulator(plan, batch_size=8).run(1).makespan_s
        duo = PipelineSimulator(plan, batch_size=8).run(2).makespan_s
        assert duo < 2 * solo  # cross-batch overlap buys real time

    def test_steady_state_matches_closed_form_gpu_bound(self):
        # GPU-bound regime: retrieval tiny, GPU block dominates.
        cfg = GenerationConfig(batch=128, output_tokens=64, stride=16)
        loads = expected_deep_loads(128, zipf_weights(10, exponent=0.45), 3)
        plan = plan_from_models(cfg, shard_tokens=[1e8] * 10, deep_loads=loads)
        sim = PipelineSimulator(plan, batch_size=128)
        report = sim.run(10)
        retrieval = float(plan.sample_seconds.max() + plan.deep_seconds.max())
        per_stride = steady_state_throughput_qps(retrieval, InferenceModel(), cfg)
        # Each request holds the bottleneck for n_strides slots.
        assert report.throughput_qps == pytest.approx(
            per_stride / cfg.n_strides, rel=0.2
        )
        assert report.gpu_utilization > 0.9

    def test_steady_state_matches_closed_form_retrieval_bound(self):
        # Retrieval-bound regime: big shards, GPU mostly idle.
        cfg = GenerationConfig(batch=32, output_tokens=64, stride=16)
        loads = expected_deep_loads(32, zipf_weights(10, exponent=0.45), 3)
        plan = plan_from_models(cfg, shard_tokens=[100e9] * 10, deep_loads=loads)
        sim = PipelineSimulator(plan, batch_size=32)
        report = sim.run(8)
        assert report.gpu_utilization < 0.5
        # Hot node gates throughput: each request holds it n_strides times.
        hot_busy = float((plan.sample_seconds + plan.deep_seconds).max())
        assert report.throughput_qps == pytest.approx(
            32 / (hot_busy * cfg.n_strides), rel=0.25
        )

    def test_queueing_grows_latency_under_burst(self):
        plan = small_plan()
        report = PipelineSimulator(plan, batch_size=8).run(6)
        latencies = [b.latency_s for b in report.batches]
        assert latencies[-1] > latencies[0]  # later batches wait in queue

    def test_open_arrivals_slower_than_service_keep_latency_flat(self):
        plan = small_plan()
        solo = PipelineSimulator(plan, batch_size=8).run(1).batches[0].latency_s
        report = PipelineSimulator(plan, batch_size=8).run(
            4, arrival_interval_s=10.0
        )
        for batch in report.batches:
            assert batch.latency_s == pytest.approx(solo)


class TestReport:
    def test_throughput_definition(self):
        plan = small_plan()
        report = PipelineSimulator(plan, batch_size=8).run(3)
        assert report.throughput_qps == pytest.approx(
            3 * 8 / report.makespan_s
        )

    def test_percentiles_ordered(self):
        plan = small_plan()
        report = PipelineSimulator(plan, batch_size=8).run(5)
        assert report.latency_percentile(50) <= report.latency_percentile(99)

    def test_invalid_args(self):
        plan = small_plan()
        with pytest.raises(ValueError):
            PipelineSimulator(plan, batch_size=0)
        with pytest.raises(ValueError):
            PipelineSimulator(plan, batch_size=8).run(0)


class TestPoissonArrivals:
    def test_overloaded_system_queues(self):
        # Service takes ~1.9s/batch; offered load every 0.5s -> queueing.
        plan = small_plan()
        report = PipelineSimulator(plan, batch_size=8).run_poisson(
            12, mean_interval_s=0.5, seed=1
        )
        assert report.latency_percentile(99) > report.latency_percentile(10)

    def test_underloaded_system_meets_slo(self):
        plan = small_plan()
        solo = PipelineSimulator(plan, batch_size=8).run(1).batches[0].latency_s
        report = PipelineSimulator(plan, batch_size=8).run_poisson(
            10, mean_interval_s=100.0, seed=2
        )
        assert report.slo_attainment(solo * 1.01) == 1.0

    def test_slo_attainment_monotone_in_threshold(self):
        plan = small_plan()
        report = PipelineSimulator(plan, batch_size=8).run_poisson(
            10, mean_interval_s=1.0, seed=3
        )
        loose = report.slo_attainment(1000.0)
        tight = report.slo_attainment(0.001)
        assert tight <= report.slo_attainment(report.mean_latency_s) <= loose
        assert loose == 1.0

    def test_ttft_slo(self):
        plan = small_plan()
        report = PipelineSimulator(plan, batch_size=8).run_poisson(
            4, mean_interval_s=50.0, seed=4
        )
        assert report.ttft_slo_attainment(1000.0) == 1.0
        with pytest.raises(ValueError):
            report.ttft_slo_attainment(0.0)

    def test_validation(self):
        plan = small_plan()
        sim = PipelineSimulator(plan, batch_size=8)
        with pytest.raises(ValueError):
            sim.run_poisson(0, mean_interval_s=1.0)
        with pytest.raises(ValueError):
            sim.run_poisson(2, mean_interval_s=0.0)

class TestFaultedFleet:
    def sched(self, **kwargs):
        from repro.serving import FleetFaultSchedule

        return FleetFaultSchedule(3, **kwargs)

    def test_skip_policy_marks_batches_degraded(self):
        from repro.serving import NodeOutage

        plan = small_plan()
        sim = PipelineSimulator(
            plan,
            batch_size=8,
            faults=self.sched(outages=[NodeOutage(1, 0.0, float("inf"))]),
        )
        report = sim.run(3)
        assert report.degraded_batches == 3
        assert report.availability == 0.0
        for batch in report.batches:
            assert batch.degraded
            assert 1 in batch.skipped_nodes

    def test_skipped_node_does_not_gate_the_phase(self):
        from repro.serving import NodeOutage

        # The slowest deep node is dead; skipping it speeds the phase up.
        plan = small_plan(deep_seconds=np.array([0.1, 0.9, 0.0]))
        dead_hot = PipelineSimulator(
            plan,
            batch_size=8,
            faults=self.sched(outages=[NodeOutage(1, 0.0, float("inf"))]),
        ).run(1)
        assert dead_hot.batches[0].latency_s == pytest.approx(
            0.1 + 2 * (0.05 + 0.1 + 0.4 + 0.5)
        )

    def test_wait_policy_stalls_until_recovery(self):
        from repro.serving import NodeOutage

        plan = small_plan()
        healthy = PipelineSimulator(plan, batch_size=8).run(1)
        waited = PipelineSimulator(
            plan,
            batch_size=8,
            faults=self.sched(outages=[NodeOutage(0, 0.0, 5.0)]),
            dead_node_policy="wait",
        ).run(1)
        assert waited.degraded_batches == 0
        assert waited.availability == 1.0
        assert waited.makespan_s > healthy.makespan_s

    def test_slowdown_scales_makespan(self):
        from repro.serving import NodeSlowdown

        plan = small_plan()
        healthy = PipelineSimulator(plan, batch_size=8).run(2)
        slowed = PipelineSimulator(
            plan,
            batch_size=8,
            faults=self.sched(
                slowdowns=[NodeSlowdown(0, 0.0, float("inf"), 4.0)]
            ),
        ).run(2)
        assert slowed.makespan_s > healthy.makespan_s
        assert slowed.degraded_batches == 0  # slow, not dead

    def test_wait_with_unrecoverable_outage_rejected(self):
        from repro.serving import NodeOutage

        plan = small_plan()
        with pytest.raises(ValueError, match="unrecoverable"):
            PipelineSimulator(
                plan,
                batch_size=8,
                faults=self.sched(outages=[NodeOutage(2, 0.0, float("inf"))]),
                dead_node_policy="wait",
            )

    def test_node_count_mismatch_rejected(self):
        from repro.serving import FleetFaultSchedule

        plan = small_plan()
        with pytest.raises(ValueError, match="covers"):
            PipelineSimulator(plan, batch_size=8, faults=FleetFaultSchedule(7))

    def test_bad_policy_rejected(self):
        plan = small_plan()
        with pytest.raises(ValueError, match="dead_node_policy"):
            PipelineSimulator(plan, batch_size=8, dead_node_policy="retry")

    def test_random_schedule_runs_end_to_end(self):
        from repro.serving import FleetFaultSchedule

        plan = small_plan()
        faults = FleetFaultSchedule.random(
            3,
            horizon_s=30.0,
            rng=np.random.default_rng(0),
            mtbf_s=10.0,
            mttr_s=2.0,
            straggler_rate_s=15.0,
        )
        report = PipelineSimulator(plan, batch_size=8, faults=faults).run(6)
        assert len(report.batches) == 6
        assert 0.0 <= report.availability <= 1.0
