"""Tests for the intra-node work-stealing simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.node_sim import schedule_batch, waves_approximation_error


class TestScheduling:
    def test_single_wave(self):
        result = schedule_batch(np.full(8, 2.0), cores=8)
        assert result.makespan_s == 2.0

    def test_exact_waves_for_uniform_multiples(self):
        result = schedule_batch(np.full(64, 1.0), cores=32)
        assert result.makespan_s == 2.0

    def test_partial_last_wave_still_costs_full_wave(self):
        result = schedule_batch(np.full(33, 1.0), cores=32)
        assert result.makespan_s == 2.0

    def test_heterogeneous_queries_pack_tightly(self):
        # One long query + many short ones: the long one defines makespan.
        latencies = np.array([10.0] + [1.0] * 8)
        result = schedule_batch(latencies, cores=4)
        assert result.makespan_s == pytest.approx(10.0)

    def test_completion_times_per_query(self):
        result = schedule_batch(np.array([1.0, 2.0, 3.0]), cores=1)
        assert list(result.per_query_completion_s) == [1.0, 3.0, 6.0]

    def test_utilization_full_when_balanced(self):
        result = schedule_batch(np.full(32, 1.0), cores=32)
        assert result.utilization == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_batch(np.array([]), cores=2)
        with pytest.raises(ValueError):
            schedule_batch(np.array([1.0]), cores=0)
        with pytest.raises(ValueError):
            schedule_batch(np.array([-1.0]), cores=2)

    @given(st.integers(1, 100), st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_makespan_bounds(self, batch, cores):
        # List scheduling is within 2x of the trivial lower bounds.
        rng = np.random.default_rng(batch * 1000 + cores)
        latencies = rng.uniform(0.1, 2.0, size=batch)
        result = schedule_batch(latencies, cores)
        lower = max(latencies.max(), latencies.sum() / cores)
        assert lower - 1e-9 <= result.makespan_s <= 2 * lower + 1e-9


class TestWavesApproximation:
    def test_exact_at_multiples(self):
        # The continuous model is near-exact at whole multiples of cores.
        err = waves_approximation_error(64, 32, exponent=1.0)
        assert abs(err) < 1e-9

    def test_optimistic_between_waves(self):
        # Between multiples the continuous model under-predicts (the real
        # partial wave costs a full service time).
        err = waves_approximation_error(40, 32, exponent=0.97)
        assert err < 0

    def test_error_bounded_at_large_batches(self):
        # The approximation converges as batches grow.
        err = waves_approximation_error(512, 32, exponent=1.0)
        assert abs(err) < 0.05
