"""Tests for the discrete-event engine."""

import pytest

from repro.serving.events import EventLoop, Resource


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.0, lambda: seen.append("b"))
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(3.0, lambda: seen.append("c"))
        loop.run()
        assert seen == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_ties_run_in_schedule_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(1.0, lambda: seen.append(2))
        loop.run()
        assert seen == [1, 2]

    def test_nested_scheduling(self):
        loop = EventLoop()
        seen = []

        def outer():
            seen.append(("outer", loop.now))
            loop.schedule(0.5, lambda: seen.append(("inner", loop.now)))

        loop.schedule(1.0, outer)
        loop.run()
        assert seen == [("outer", 1.0), ("inner", 1.5)]

    def test_until_stops_early(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(5.0, lambda: seen.append(2))
        loop.run(until=2.0)
        assert seen == [1]
        assert loop.now == 2.0
        assert loop.pending == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-1.0, lambda: None)

    def test_runaway_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.0, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="runaway"):
            loop.run(max_events=100)


class TestResource:
    def test_immediate_grant_when_free(self):
        loop = EventLoop()
        res = Resource(loop, "r")
        granted = []
        res.acquire(lambda: granted.append(loop.now))
        assert granted == [0.0]
        assert res.busy

    def test_fifo_queueing(self):
        loop = EventLoop()
        res = Resource(loop, "r")
        order = []

        def holder():
            loop.schedule(1.0, lambda: (order.append("first"), res.release()))

        def second():
            order.append("second")
            res.release()

        res.acquire(holder)
        res.acquire(second)
        res.acquire(lambda: order.append("third"))
        assert res.queue_length == 2
        loop.run()
        assert order == ["first", "second", "third"]

    def test_release_idle_raises(self):
        loop = EventLoop()
        with pytest.raises(RuntimeError):
            Resource(loop, "r").release()

    def test_busy_seconds_accumulate(self):
        loop = EventLoop()
        res = Resource(loop, "r")
        res.hold_for(2.0)
        res.hold_for(3.0)
        loop.run()
        assert res.busy_seconds == pytest.approx(5.0)
        assert loop.now == pytest.approx(5.0)

    def test_hold_for_continuation(self):
        loop = EventLoop()
        res = Resource(loop, "r")
        seen = []
        res.hold_for(1.5, then=lambda: seen.append(loop.now))
        loop.run()
        assert seen == [1.5]
