"""Tests for the serve-time multi-tier retrieval cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchical import HermesSearcher
from repro.core.router import RoutingDecision
from repro.datastore.embeddings import zipf_weights
from repro.serving.cache import (
    EXACT_HIT,
    MISS,
    ROUTING_HIT,
    SEMANTIC_HIT,
    CacheConfig,
    RetrievalCache,
    query_digest,
)


@pytest.fixture(scope="module")
def searcher(clustered):
    return HermesSearcher(clustered)


@pytest.fixture(scope="module")
def queries(small_queries):
    return small_queries.embeddings


PARAMS = (5, 3, 128)  # (k, clusters_to_search, deep_nprobe)


class FakeResult:
    """Minimal SearchResult stand-in for cache-only tests."""

    def __init__(self, nq: int, k: int = 4, m: int = 2, n_clusters: int = 4):
        self.distances = np.zeros((nq, k), dtype=np.float32)
        self.ids = np.arange(nq * k, dtype=np.int64).reshape(nq, k)
        self.routing = RoutingDecision(
            clusters=np.zeros((nq, m), dtype=np.int64),
            scores=np.zeros((nq, n_clusters), dtype=np.float32),
        )
        self.degraded = False


def key_vector(key: int, dim: int = 6) -> np.ndarray:
    """A deterministic, well-separated unit vector per integer key."""
    rng = np.random.default_rng(10_000 + key)
    v = rng.normal(size=dim).astype(np.float32)
    return v / np.linalg.norm(v)


def rotated(q: np.ndarray, cosine: float, seed: int = 0) -> np.ndarray:
    """A vector at exactly the requested cosine similarity to *q*."""
    qn = q / np.linalg.norm(q)
    rng = np.random.default_rng(seed)
    u = rng.normal(size=q.shape).astype(np.float64)
    u -= (u @ qn) * qn
    u /= np.linalg.norm(u)
    out = cosine * qn + np.sqrt(1.0 - cosine**2) * u
    return out.astype(np.float32)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity=0)
        with pytest.raises(ValueError):
            CacheConfig(semantic_threshold=1.5)
        with pytest.raises(ValueError):
            CacheConfig(routing_threshold=0.0)
        # Routing must be the looser (smaller) threshold.
        with pytest.raises(ValueError):
            CacheConfig(semantic_threshold=0.9, routing_threshold=0.99)

    def test_single_tier_configs_allowed(self):
        CacheConfig(semantic_threshold=None, routing_threshold=0.8)
        CacheConfig(semantic_threshold=0.99, routing_threshold=None)


class TestDigest:
    def test_sensitive_to_vector_bits_and_params(self):
        q = key_vector(1)
        assert query_digest(q, PARAMS) == query_digest(q.copy(), PARAMS)
        bumped = q.copy()
        bumped[0] = np.nextafter(bumped[0], np.float32(np.inf))
        assert query_digest(bumped, PARAMS) != query_digest(q, PARAMS)
        assert query_digest(q, (10, 3, 128)) != query_digest(q, PARAMS)


class TestExactTier:
    def test_warm_lookup_bit_identical(self, searcher, queries):
        q = queries[:8]
        cache = RetrievalCache(CacheConfig(capacity=32))
        cold = cache.lookup(q, PARAMS[0], PARAMS)
        assert (cold.kinds == MISS).all()
        result = searcher.search(q, k=PARAMS[0])
        cache.insert(q, result, PARAMS)
        warm = cache.lookup(q, PARAMS[0], PARAMS)
        assert (warm.kinds == EXACT_HIT).all()
        assert np.array_equal(warm.ids, result.ids)
        assert np.array_equal(warm.distances, result.distances)

    def test_params_mismatch_never_matches(self, searcher, queries):
        q = queries[:2]
        cache = RetrievalCache(CacheConfig(capacity=8))
        cache.insert(q, searcher.search(q, k=5), PARAMS)
        other = (10, 3, 128)
        miss = cache.lookup(q, 10, other)
        assert (miss.kinds == MISS).all()

    def test_degraded_results_refused(self, queries):
        cache = RetrievalCache(CacheConfig(capacity=8))
        fake = FakeResult(2)
        fake.degraded = True
        assert cache.insert(queries[:2], fake, PARAMS) == 0
        assert len(cache) == 0


class TestSemanticAndRoutingTiers:
    def make_cache(self, **kwargs):
        cfg = CacheConfig(
            capacity=16,
            semantic_threshold=kwargs.pop("semantic_threshold", 0.95),
            routing_threshold=kwargs.pop("routing_threshold", 0.80),
        )
        return RetrievalCache(cfg)

    def test_tier_assignment_by_similarity(self, searcher, queries):
        base = queries[:1]
        cache = self.make_cache()
        result = searcher.search(base, k=5)
        cache.insert(base, result, PARAMS)
        semantic = cache.lookup(rotated(base[0], 0.99)[np.newaxis], 5, PARAMS)
        routing = cache.lookup(rotated(base[0], 0.90)[np.newaxis], 5, PARAMS)
        miss = cache.lookup(rotated(base[0], 0.50)[np.newaxis], 5, PARAMS)
        assert semantic.kinds[0] == SEMANTIC_HIT
        assert np.array_equal(semantic.ids[0], result.ids[0])
        assert routing.kinds[0] == ROUTING_HIT
        assert miss.kinds[0] == MISS

    def test_routing_for_returns_cached_decision(self, searcher, queries):
        base = queries[:1]
        cache = self.make_cache()
        result = searcher.search(base, k=5)
        cache.insert(base, result, PARAMS)
        lookup = cache.lookup(rotated(base[0], 0.90)[np.newaxis], 5, PARAMS)
        decision = lookup.routing_for(lookup.miss_rows)
        assert np.array_equal(decision.clusters, result.routing.clusters)
        assert np.array_equal(decision.scores, result.routing.scores)

    def test_disabled_tiers_miss(self, searcher, queries):
        base = queries[:1]
        cache = RetrievalCache(
            CacheConfig(capacity=16, semantic_threshold=None, routing_threshold=None)
        )
        cache.insert(base, searcher.search(base, k=5), PARAMS)
        near = cache.lookup(rotated(base[0], 0.9999)[np.newaxis], 5, PARAMS)
        assert near.kinds[0] == MISS


class TestStaleRouting:
    """Satellite regression: a cached RoutingDecision that routes into a
    currently-excluded (dead / breaker-open) cluster must not be replayed."""

    def make_cache(self):
        return RetrievalCache(
            CacheConfig(capacity=16, semantic_threshold=0.95, routing_threshold=0.80)
        )

    def test_excluded_cluster_demotes_routing_hit(self):
        cache = self.make_cache()
        q = key_vector(3)[np.newaxis]
        cache.insert(q, FakeResult(1), PARAMS)  # FakeResult routes to cluster 0
        probe = rotated(q[0], 0.90)[np.newaxis]
        assert cache.lookup(probe, 4, PARAMS).kinds[0] == ROUTING_HIT
        stale = cache.lookup(probe, 4, PARAMS, exclude=frozenset({0}))
        assert stale.kinds[0] == MISS
        assert cache.stats.stale_routing == 1

    def test_unrelated_exclusion_keeps_routing_hit(self):
        cache = self.make_cache()
        q = key_vector(4)[np.newaxis]
        cache.insert(q, FakeResult(1), PARAMS)
        probe = rotated(q[0], 0.90)[np.newaxis]
        hit = cache.lookup(probe, 4, PARAMS, exclude=frozenset({3}))
        assert hit.kinds[0] == ROUTING_HIT
        assert cache.stats.stale_routing == 0

    def test_exact_and_semantic_tiers_unaffected(self):
        """Complete cached answers were computed when the shard was healthy;
        only replaying a routing decision into a dead shard is dangerous."""
        cache = self.make_cache()
        q = key_vector(5)[np.newaxis]
        cache.insert(q, FakeResult(1), PARAMS)
        exclude = frozenset({0})
        assert cache.lookup(q, 4, PARAMS, exclude=exclude).kinds[0] == EXACT_HIT
        near = rotated(q[0], 0.99)[np.newaxis]
        assert cache.lookup(near, 4, PARAMS, exclude=exclude).kinds[0] == SEMANTIC_HIT

    def test_stale_routing_counted_on_registry(self):
        from repro.obs.metrics import MetricsRegistry, set_registry

        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            cache = self.make_cache()
            q = key_vector(6)[np.newaxis]
            cache.insert(q, FakeResult(1), PARAMS)
            probe = rotated(q[0], 0.90)[np.newaxis]
            cache.lookup(probe, 4, PARAMS, exclude=frozenset({0}))
            snap = fresh.snapshot()
            assert snap["retrieval_cache_stale_routing_total"] == 1
        finally:
            set_registry(previous)


class TestSemanticSlack:
    """The brownout knob: slack loosens the semantic threshold per lookup."""

    def test_slack_loosens_semantic_threshold(self):
        cache = RetrievalCache(
            CacheConfig(capacity=8, semantic_threshold=0.95, routing_threshold=None)
        )
        q = key_vector(7)[np.newaxis]
        cache.insert(q, FakeResult(1), PARAMS)
        probe = rotated(q[0], 0.93)[np.newaxis]
        assert cache.lookup(probe, 4, PARAMS).kinds[0] == MISS
        loose = cache.lookup(probe, 4, PARAMS, semantic_slack=0.03)
        assert loose.kinds[0] == SEMANTIC_HIT

    def test_negative_slack_never_tightens(self):
        cache = RetrievalCache(
            CacheConfig(capacity=8, semantic_threshold=0.95, routing_threshold=None)
        )
        q = key_vector(8)[np.newaxis]
        cache.insert(q, FakeResult(1), PARAMS)
        probe = rotated(q[0], 0.97)[np.newaxis]
        assert cache.lookup(probe, 4, PARAMS, semantic_slack=-1.0).kinds[0] == SEMANTIC_HIT


class TestEviction:
    CAPACITY = 8

    def fresh(self):
        return RetrievalCache(
            CacheConfig(
                capacity=self.CAPACITY,
                semantic_threshold=None,
                routing_threshold=None,
            )
        )

    def test_lru_evicts_oldest(self):
        cache = self.fresh()
        for key in range(10):
            cache.insert(key_vector(key)[np.newaxis], FakeResult(1), PARAMS)
        assert len(cache) == self.CAPACITY
        assert cache.stats.evictions == 2
        for key, expected in [(0, MISS), (1, MISS), (2, EXACT_HIT), (9, EXACT_HIT)]:
            kind = cache.lookup(key_vector(key)[np.newaxis], 4, PARAMS).kinds[0]
            assert kind == expected, key

    def test_touch_on_hit_protects_entry(self):
        cache = self.fresh()
        for key in range(self.CAPACITY):
            cache.insert(key_vector(key)[np.newaxis], FakeResult(1), PARAMS)
        cache.lookup(key_vector(0)[np.newaxis], 4, PARAMS)  # refresh key 0
        cache.insert(key_vector(100)[np.newaxis], FakeResult(1), PARAMS)
        assert cache.lookup(key_vector(0)[np.newaxis], 4, PARAMS).kinds[0] == EXACT_HIT
        assert cache.lookup(key_vector(1)[np.newaxis], 4, PARAMS).kinds[0] == MISS

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_capacity_respected_under_random_workload(self, keys):
        cache = self.fresh()
        for key in keys:
            cache.insert(key_vector(key)[np.newaxis], FakeResult(1), PARAMS)
            assert len(cache) <= self.CAPACITY
            assert len(cache.cached_digests()) == len(cache)
        if keys:
            # The most recent insert always survives.
            last = cache.lookup(key_vector(keys[-1])[np.newaxis], 4, PARAMS)
            assert last.kinds[0] == EXACT_HIT
        assert cache.stats.inserts == len(keys)


class TestSkewSweep:
    def test_hit_rate_monotone_in_zipf_skew(self):
        """With the cache smaller than the pool, skew drives the hit rate."""
        pool = np.stack([key_vector(i, dim=8) for i in range(64)])
        rates = []
        for alpha in (0.0, 0.8, 1.6, 2.4):
            rng = np.random.default_rng(0)
            stream = rng.choice(64, size=512, p=zipf_weights(64, exponent=alpha))
            cache = RetrievalCache(
                CacheConfig(
                    capacity=16, semantic_threshold=None, routing_threshold=None
                )
            )
            for idx in stream:
                q = pool[int(idx)][np.newaxis]
                if cache.lookup(q, 4, PARAMS).kinds[0] == MISS:
                    cache.insert(q, FakeResult(1), PARAMS)
            rates.append(cache.stats.hit_rate)
        assert all(b > a for a, b in zip(rates, rates[1:])), rates


class TestGenerationInvalidation:
    def test_same_generation_hits(self, queries):
        cache = RetrievalCache(CacheConfig(capacity=8))
        q = queries[:2]
        cache.insert(q, FakeResult(2), PARAMS, generation=3)
        warm = cache.lookup(q, 4, PARAMS, generation=3)
        assert (warm.kinds == EXACT_HIT).all()
        assert cache.stats.stale_generation == 0

    def test_generation_change_invalidates_exact_entry(self, queries):
        cache = RetrievalCache(CacheConfig(capacity=8))
        q = queries[:2]
        cache.insert(q, FakeResult(2), PARAMS, generation=3)
        stale = cache.lookup(q, 4, PARAMS, generation=4)
        assert (stale.kinds == MISS).all()
        assert cache.stats.stale_generation == 2
        assert len(cache) == 0  # evicted, not just skipped

    def test_generation_change_invalidates_semantic_tier(self):
        cache = RetrievalCache(
            CacheConfig(capacity=8, semantic_threshold=0.99, routing_threshold=0.8)
        )
        q = key_vector(1)[np.newaxis]
        cache.insert(q, FakeResult(1), PARAMS, generation=1)
        near = rotated(q[0], 0.995)[np.newaxis]
        hit = cache.lookup(near, 4, PARAMS, generation=1)
        assert hit.kinds[0] == SEMANTIC_HIT
        stale = cache.lookup(near, 4, PARAMS, generation=2)
        assert stale.kinds[0] == MISS
        assert cache.stats.stale_generation >= 1

    def test_generation_unaware_lookup_is_agnostic(self, queries):
        # A caller that does not track generations (lookup generation=None)
        # serves whatever is cached, whatever generation it was written at.
        cache = RetrievalCache(CacheConfig(capacity=8))
        q = queries[:1]
        cache.insert(q, FakeResult(1), PARAMS, generation=3)
        assert (cache.lookup(q, 4, PARAMS).kinds == EXACT_HIT).all()
        assert cache.stats.stale_generation == 0

    def test_unknown_generation_entry_is_stale_to_aware_lookup(self, queries):
        # An entry written without a generation cannot be proven current, so
        # a generation-aware lookup conservatively refuses it.
        cache = RetrievalCache(CacheConfig(capacity=8))
        q = queries[:1]
        cache.insert(q, FakeResult(1), PARAMS)  # generation=None
        assert (cache.lookup(q, 4, PARAMS, generation=7).kinds == MISS).all()
        assert cache.stats.stale_generation == 1

    def test_stale_generation_counter_on_registry(self, queries):
        from repro.obs.metrics import MetricsRegistry, set_registry

        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            cache = RetrievalCache(CacheConfig(capacity=8))
            q = queries[:3]
            cache.insert(q, FakeResult(3), PARAMS, generation=0)
            cache.lookup(q, 4, PARAMS, generation=1)
            snap = fresh.snapshot()
            assert snap["retrieval_cache_stale_generation_total"] == 3
        finally:
            set_registry(previous)


class TestMetrics:
    def test_registry_counters_emitted(self, queries):
        from repro.obs.metrics import MetricsRegistry, set_registry

        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            cache = RetrievalCache(CacheConfig(capacity=4))
            cache.lookup(queries[:3], 4, PARAMS)
            cache.insert(queries[:3], FakeResult(3), PARAMS)
            cache.lookup(queries[:3], 4, PARAMS)
            snap = fresh.snapshot()
            assert snap['retrieval_cache_lookups_total{tier="miss"}'] == 3
            assert snap['retrieval_cache_lookups_total{tier="exact_hit"}'] == 3
            assert snap["retrieval_cache_inserts_total"] == 3
            assert snap["retrieval_cache_size"] == 3
        finally:
            set_registry(previous)
