"""Tests for replica groups: failover, probing, and recovery."""

import dataclasses

import numpy as np
import pytest

from repro.core.errors import ShardCrashedError, TransientShardError
from repro.core.hierarchical import HermesSearcher
from repro.serving.faults import CrashStop, FaultInjector, FaultyShard
from repro.serving.replication import (
    ReplicaGroup,
    kill_replica,
    replica_groups,
    replicate_datastore,
)


@pytest.fixture(scope="module")
def queries(small_queries):
    return small_queries.embeddings


class _FlakyReplica:
    """Replica wrapper that fails while ``failing`` is set; counts calls."""

    def __init__(self, inner, exc=TransientShardError):
        self._inner = inner
        self._exc = exc
        self.failing = True
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __len__(self):
        return len(self._inner)

    def search(self, queries, k, *, nprobe=None):
        self.calls += 1
        if self.failing:
            raise self._exc(self._inner.shard_id)
        return self._inner.search(queries, k, nprobe=nprobe)


class TestReplicaGroup:
    def test_shard_surface_delegates(self, clustered, queries):
        shard = clustered.shards[0]
        group = ReplicaGroup([shard, shard])
        assert group.shard_id == shard.shard_id
        assert len(group) == len(shard)
        assert group.n_replicas == 2
        assert np.array_equal(group.global_ids, shard.global_ids)
        assert np.array_equal(group.centroid, shard.centroid)
        direct = shard.search(queries[:4], 5)
        via = group.search(queries[:4], 5)
        assert np.array_equal(via[0], direct[0])
        assert np.array_equal(via[1], direct[1])

    def test_validation(self, clustered):
        with pytest.raises(ValueError, match="at least one"):
            ReplicaGroup([])
        with pytest.raises(ValueError, match="disagree on shard_id"):
            ReplicaGroup([clustered.shards[0], clustered.shards[1]])
        shard = clustered.shards[0]
        with pytest.raises(ValueError):
            ReplicaGroup([shard], probe_interval=0)
        with pytest.raises(ValueError):
            ReplicaGroup([shard], recovery_successes=0)

    def test_crash_fails_over_within_the_call(self, clustered, queries):
        shard = clustered.shards[2]
        dead = FaultInjector(7).wrap_shard(shard, CrashStop(at_call=0))
        group = ReplicaGroup([dead, shard], probe_interval=1000)
        direct = shard.search(queries[:4], 5)
        served = group.search(queries[:4], 5)
        assert np.array_equal(served[1], direct[1])
        assert group.failovers == 1
        assert group.out_replicas() == (0,)
        # The tripped replica is skipped entirely until a probe is due.
        for _ in range(5):
            group.search(queries[:4], 5)
        assert dead.calls == 1
        assert group.failovers == 1

    def test_transient_failures_count_to_threshold(self, clustered, queries):
        shard = clustered.shards[1]
        flaky = _FlakyReplica(shard)
        group = ReplicaGroup(
            [flaky, shard], probe_interval=1000, breaker_threshold=2
        )
        group.search(queries[:2], 5)  # failure 1: still under threshold
        assert group.out_replicas() == ()
        group.search(queries[:2], 5)  # failure 2: breaker opens
        assert group.out_replicas() == (0,)
        group.search(queries[:2], 5)
        assert flaky.calls == 2  # no longer tried once open
        assert group.failovers == 2

    def test_all_replicas_dead_reraises(self, clustered, queries):
        shard = clustered.shards[3]
        injector = FaultInjector(9)
        group = ReplicaGroup(
            [
                injector.wrap_shard(shard, CrashStop(at_call=0)),
                injector.wrap_shard(shard, CrashStop(at_call=0)),
            ]
        )
        with pytest.raises(ShardCrashedError):
            group.search(queries[:2], 5)
        assert group.out_replicas() == (0, 1)
        # With nothing healthy, every call probes everything (still dead).
        with pytest.raises(ShardCrashedError):
            group.search(queries[:2], 5)

    def test_probe_recovery_readmits_after_streak(self, clustered, queries):
        shard = clustered.shards[4]
        flaky = _FlakyReplica(shard, exc=ShardCrashedError)
        group = ReplicaGroup(
            [flaky, shard],
            probe_interval=2,
            recovery_successes=2,
            breaker_threshold=1,
        )
        q = queries[:2]
        group.search(q, 5)  # call 1: crash trips the breaker, failover serves
        assert group.out_replicas() == (0,)
        group.search(q, 5)  # call 2: probe due, still failing — streak stays 0
        assert flaky.calls == 2
        flaky.failing = False
        group.search(q, 5)  # call 3: probe not due, served by the healthy one
        assert flaky.calls == 2
        group.search(q, 5)  # call 4: probe success, streak 1 — still out
        assert group.out_replicas() == (0,)
        group.search(q, 5)  # call 5: no probe
        group.search(q, 5)  # call 6: probe success, streak 2 — re-admitted
        assert group.out_replicas() == ()
        assert group.recoveries == 1
        group.search(q, 5)  # call 7: back in normal selection
        assert flaky.calls == 5

    def test_probes_are_rate_limited(self, clustered, queries):
        shard = clustered.shards[5]
        flaky = _FlakyReplica(shard, exc=ShardCrashedError)
        group = ReplicaGroup(
            [flaky, shard], probe_interval=4, breaker_threshold=1
        )
        for _ in range(12):
            group.search(queries[:2], 5)
        # Initial trip (call 1) + one probe per interval (calls 4, 8, 12).
        assert flaky.calls == 4
        assert group.out_replicas() == (0,)


class TestReplicateDatastore:
    def test_structure(self, clustered):
        rep = replicate_datastore(clustered, 2)
        assert len(rep.shards) == clustered.config.n_clusters
        groups = replica_groups(rep)
        assert len(groups) == len(rep.shards)
        assert all(g.n_replicas == 2 for g in groups)
        assert [g.shard_id for g in groups] == [
            s.shard_id for s in clustered.shards
        ]
        with pytest.raises(ValueError):
            replicate_datastore(clustered, 0)

    def test_wrap_hook_decorates_replicas(self, clustered):
        injector = FaultInjector(7)

        def chaos(shard_id, replica, shard):
            if shard_id == 0 and replica == 0:
                return injector.wrap_shard(shard, CrashStop(at_call=40))
            return shard

        rep = replicate_datastore(clustered, 2, wrap=chaos)
        group = replica_groups(rep)[0]
        assert isinstance(group.replicas[0], FaultyShard)
        assert not isinstance(group.replicas[1], FaultyShard)

    def test_search_equivalent_to_unreplicated(self, clustered, queries):
        base = HermesSearcher(clustered).search(queries, k=5)
        rep = HermesSearcher(replicate_datastore(clustered, 2)).search(
            queries, k=5
        )
        assert np.array_equal(rep.ids, base.ids)
        assert np.array_equal(rep.distances, base.distances)

    def test_replica_kill_costs_no_quality(self, clustered, queries):
        """Killing one replica of every shard leaves results bit-identical —
        the failover path serves the exact copy."""
        base = HermesSearcher(clustered).search(queries, k=5)
        rep = replicate_datastore(clustered, 2)
        for group in replica_groups(rep):
            kill_replica(group, 0, seed=3)
        result = HermesSearcher(rep).search(queries, k=5)
        assert np.array_equal(result.ids, base.ids)
        assert not result.degraded
        groups = replica_groups(rep)
        assert sum(g.failovers for g in groups) >= len(groups)
        assert all(g.out_replicas() == (0,) for g in groups)

    def test_kill_is_local_to_the_replicated_copy(self, clustered):
        copy = dataclasses.replace(clustered, shards=list(clustered.shards))
        rep = replicate_datastore(copy, 2)
        kill_replica(replica_groups(rep)[0], 0)
        # The source datastore's shard objects are untouched.
        assert not isinstance(clustered.shards[0], FaultyShard)
