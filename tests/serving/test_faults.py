"""Unit tests for the fault models and the injector's determinism."""

import numpy as np
import pytest

from repro.core.errors import ShardCrashedError, TransientShardError
from repro.serving.faults import (
    CrashStop,
    FaultInjector,
    FleetFaultSchedule,
    NodeOutage,
    NodeSlowdown,
    OutageWindow,
    Straggler,
    TransientFault,
    faulty_shards,
    kill_shards,
)


def rng():
    return np.random.default_rng(0)


class TestCrashStop:
    def test_crashes_from_at_call(self):
        model = CrashStop(at_call=2)
        r = rng()
        assert model.on_call(0, 5, r) == 0.0
        assert model.on_call(1, 5, r) == 0.0
        with pytest.raises(ShardCrashedError) as exc:
            model.on_call(2, 5, r)
        assert exc.value.shard_id == 5

    def test_stays_crashed(self):
        model = CrashStop(at_call=0)
        for _ in range(3):
            with pytest.raises(ShardCrashedError):
                model.on_call(0, 1, rng())

    def test_probabilistic_crash_is_permanent(self):
        model = CrashStop(at_call=None, probability=0.5)
        r = rng()
        crashed_at = None
        for i in range(100):
            try:
                model.on_call(i, 0, r)
            except ShardCrashedError:
                crashed_at = i
                break
        assert crashed_at is not None
        with pytest.raises(ShardCrashedError):
            model.on_call(crashed_at + 1, 0, r)

    def test_requires_trigger(self):
        with pytest.raises(ValueError):
            CrashStop(at_call=None, probability=0.0)


class TestTransientFault:
    def test_fails_with_probability_and_recovers(self):
        model = TransientFault(0.5)
        r = rng()
        outcomes = []
        for i in range(200):
            try:
                model.on_call(i, 3, r)
                outcomes.append(True)
            except TransientShardError:
                outcomes.append(False)
        failures = outcomes.count(False)
        assert 50 < failures < 150  # roughly p=0.5
        assert any(outcomes)  # recovery: successes interleave

    def test_max_failures_bounds_the_burst(self):
        model = TransientFault(1.0, max_failures=3)
        r = rng()
        failures = 0
        for i in range(10):
            try:
                model.on_call(i, 0, r)
            except TransientShardError:
                failures += 1
        assert failures == 3  # recovered after the bounded burst


class TestOutageWindow:
    def test_window_fails_then_recovers(self):
        model = OutageWindow(start_call=1, n_calls=2)
        r = rng()
        assert model.on_call(0, 7, r) == 0.0
        for idx in (1, 2):
            with pytest.raises(TransientShardError):
                model.on_call(idx, 7, r)
        assert model.on_call(3, 7, r) == 0.0


class TestStraggler:
    def test_fixed_delay(self):
        model = Straggler(0.25)
        assert model.on_call(0, 0, rng()) == 0.25

    def test_heavy_tail_exceeds_base(self):
        model = Straggler(0.1, heavy_tail_alpha=2.0)
        delays = [model.on_call(i, 0, rng()) for i in range(5)]
        assert all(d >= 0.1 for d in delays)

    def test_call_restriction(self):
        model = Straggler(0.5, calls=[1])
        r = rng()
        assert model.on_call(0, 0, r) == 0.0
        assert model.on_call(1, 0, r) == 0.5
        assert model.on_call(2, 0, r) == 0.0


class TestFaultInjector:
    def test_wrap_shares_indices_and_preserves_surface(self, clustered):
        chaotic = kill_shards(clustered, [0])
        assert chaotic.n_clusters == clustered.n_clusters
        assert chaotic.ntotal == clustered.ntotal
        # wrapped shard delegates the full shard surface
        wrapped = chaotic.shards[0]
        assert wrapped.shard_id == 0
        assert len(wrapped) == len(clustered.shards[0])
        assert wrapped.index is clustered.shards[0].index
        # unwrapped shards are the same objects
        assert chaotic.shards[1] is clustered.shards[1]

    def test_killed_shard_raises_on_search(self, clustered, small_queries):
        chaotic = kill_shards(clustered, [2])
        with pytest.raises(ShardCrashedError):
            chaotic.shards[2].search(small_queries.embeddings[:2], 5)

    def test_unknown_shard_id_rejected(self, clustered):
        with pytest.raises(ValueError, match="unknown shard ids"):
            FaultInjector().wrap(clustered, {99: CrashStop()})

    def test_fault_log_records_outcomes(self, clustered, small_queries):
        injector = FaultInjector(seed=1)
        chaotic = injector.wrap(clustered, {0: OutageWindow(start_call=0, n_calls=1)})
        shard = chaotic.shards[0]
        with pytest.raises(TransientShardError):
            shard.search(small_queries.embeddings[:1], 5)
        shard.search(small_queries.embeddings[:1], 5)
        assert [e.kind for e in shard.log] == ["transient", "ok"]
        assert faulty_shards(chaotic) == [shard]

    def test_same_seed_same_schedule(self, clustered, small_queries):
        """Satellite: two runs with one seed produce identical schedules."""

        def run_once():
            injector = FaultInjector(seed=11)
            chaotic = injector.wrap(
                clustered,
                {
                    1: [TransientFault(0.4), Straggler(1e-4, heavy_tail_alpha=2.0)],
                    3: TransientFault(0.3),
                },
            )
            logs = {}
            for shard_id in (1, 3):
                shard = chaotic.shards[shard_id]
                for _ in range(30):
                    try:
                        shard.search(small_queries.embeddings[:1], 5)
                    except TransientShardError:
                        pass
                logs[shard_id] = list(shard.log)
            return logs

        assert run_once() == run_once()


class TestFleetFaultSchedule:
    def test_outage_membership_and_recovery(self):
        sched = FleetFaultSchedule(
            4, outages=[NodeOutage(1, 5.0, 10.0), NodeOutage(1, 9.0, 12.0)]
        )
        assert not sched.is_down(1, 4.9)
        assert sched.is_down(1, 5.0)
        assert sched.is_down(1, 11.0)  # chained outage
        assert sched.recovery_time(1, 6.0) == 12.0
        assert sched.recovery_time(0, 6.0) == 6.0

    def test_unrecoverable_outage(self):
        sched = FleetFaultSchedule(2, outages=[NodeOutage(0, 0.0, float("inf"))])
        assert sched.has_unrecoverable
        assert sched.recovery_time(0, 1.0) == float("inf")

    def test_slowdown_factors_compose(self):
        sched = FleetFaultSchedule(
            2,
            slowdowns=[
                NodeSlowdown(0, 0.0, 10.0, 2.0),
                NodeSlowdown(0, 5.0, 15.0, 3.0),
            ],
        )
        assert sched.slowdown(0, 1.0) == 2.0
        assert sched.slowdown(0, 7.0) == 6.0
        assert sched.slowdown(0, 12.0) == 3.0
        assert sched.slowdown(1, 7.0) == 1.0

    def test_event_validation(self):
        with pytest.raises(ValueError, match="exceed"):
            NodeOutage(0, 5.0, 5.0)
        with pytest.raises(ValueError, match="factor"):
            NodeSlowdown(0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="names node"):
            FleetFaultSchedule(2, outages=[NodeOutage(5, 0.0, 1.0)])

    def test_random_schedule_deterministic(self):
        kwargs = dict(
            horizon_s=200.0,
            mtbf_s=50.0,
            mttr_s=10.0,
            straggler_rate_s=60.0,
            straggler_factor=4.0,
        )
        a = FleetFaultSchedule.random(6, rng=np.random.default_rng(3), **kwargs)
        b = FleetFaultSchedule.random(6, rng=np.random.default_rng(3), **kwargs)
        assert a.outages == b.outages
        assert a.slowdowns == b.slowdowns
        assert len(a.outages) > 0

    def test_random_schedule_seed_sensitivity(self):
        a = FleetFaultSchedule.random(
            6, horizon_s=200.0, rng=np.random.default_rng(3), mtbf_s=50.0, mttr_s=10.0
        )
        b = FleetFaultSchedule.random(
            6, horizon_s=200.0, rng=np.random.default_rng(4), mtbf_s=50.0, mttr_s=10.0
        )
        assert a.outages != b.outages
