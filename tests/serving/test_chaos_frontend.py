"""Chaos tests at the frontend layer: faults under the batcher, race hammers.

The core chaos suite (tests/serving/test_faults.py) exercises the searcher's
survival machinery directly; these tests drive the same fault models through
the *serving* stack — ServingFrontend + DynamicBatcher — where a shard crash
or straggler hits mid-batch, behind the cache, under coalescing.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.hierarchical import HermesSearcher, RetrievalPolicy
from repro.serving.cache import CacheConfig
from repro.serving.faults import CrashStop, FaultInjector, Straggler, faulty_shards
from repro.serving.frontend import DynamicBatcher, ServingFrontend
from repro.serving.replication import kill_replica, replica_groups, replicate_datastore


@pytest.fixture(scope="module")
def queries(small_queries):
    return small_queries.embeddings


def exact_only_frontend(searcher, capacity=64):
    return ServingFrontend(
        searcher,
        cache_config=CacheConfig(
            capacity=capacity, semantic_threshold=None, routing_threshold=None
        ),
    )


class TestChaosUnderBatcher:
    def test_shard_crash_mid_batch_degrades_not_fails(self, clustered, queries):
        """A shard crashing between sampling and deep search degrades the
        batch; every future still resolves with a full top-k row."""
        crash_id = 1
        chaotic = FaultInjector(3).wrap(
            clustered, {crash_id: CrashStop(at_call=1)}
        )
        searcher = HermesSearcher(
            chaotic, policy=RetrievalPolicy(max_attempts=1, breaker_threshold=1)
        )
        frontend = exact_only_frontend(searcher)
        with DynamicBatcher(frontend, max_batch=8, max_wait_s=0.01) as batcher:
            futures = [batcher.submit(row, k=5) for row in queries[:8]]
            rows = [f.result(timeout=30) for f in futures]
        for served in rows:
            assert served.ids.shape == (5,)
            assert served.degradation_level == 0  # brownout is off here
        log = faulty_shards(searcher.datastore)[0].log
        assert any(ev.kind == "crash" for ev in log)

    def test_pareto_straggler_blocks_but_does_not_corrupt(
        self, clustered, queries
    ):
        """A heavy-tailed straggler on one shard head-of-line blocks its
        batches; later requests still complete and ids match a healthy run."""
        q = queries[:8]
        direct = HermesSearcher(clustered).search(q, k=5)
        chaotic = FaultInjector(5).wrap(
            clustered,
            {0: Straggler(0.02, heavy_tail_alpha=1.5)},
        )
        searcher = HermesSearcher(chaotic)
        frontend = exact_only_frontend(searcher)
        with DynamicBatcher(frontend, max_batch=4, max_wait_s=0.001) as batcher:
            futures = [batcher.submit(row, k=5) for row in q]
            rows = [f.result(timeout=60) for f in futures]
        for i, served in enumerate(rows):
            assert np.array_equal(served.ids, direct.ids[i])
        assert batcher.stats.requests == 8
        log = faulty_shards(searcher.datastore)[0].log
        assert any(ev.kind == "delay" and ev.delay_s >= 0.02 for ev in log)

    def test_replica_kill_invisible_through_frontend(self, clustered, queries):
        """With every shard replicated and one replica killed, the frontend
        serves bit-identical ids — failover happens below the cache."""
        q = queries[:8]
        healthy = exact_only_frontend(HermesSearcher(clustered)).search(q, k=5)
        rep = replicate_datastore(clustered, 2)
        for group in replica_groups(rep):
            kill_replica(group, 0, seed=11)
        survived = exact_only_frontend(HermesSearcher(rep)).search(q, k=5)
        assert np.array_equal(survived.ids, healthy.ids)
        assert sum(g.failovers for g in replica_groups(rep)) > 0


class TestSubmitCloseRace:
    def test_submit_vs_close_hammer(self, clustered, queries):
        """Threads hammer submit() while the batcher closes: no deadlock,
        and every accepted future resolves (close drains the queue)."""
        searcher = HermesSearcher(clustered)
        for trial in range(3):
            batcher = DynamicBatcher(
                exact_only_frontend(searcher), max_batch=8, max_wait_s=0.001
            )
            futures = []
            lock = threading.Lock()
            closed_seen = threading.Event()

            def hammer(tid):
                i = 0
                while not closed_seen.is_set():
                    try:
                        f = batcher.submit(queries[(tid + i) % len(queries)], k=5)
                    except RuntimeError:
                        closed_seen.set()
                        return
                    with lock:
                        futures.append(f)
                    i += 1

            threads = [
                threading.Thread(target=hammer, args=(t,)) for t in range(4)
            ]
            for t in threads:
                t.start()
            time.sleep(0.05)
            batcher.close()
            closed_seen.set()
            for t in threads:
                t.join(timeout=10)
            assert not any(t.is_alive() for t in threads), f"trial {trial} hung"
            assert futures, "hammer threads never got a request in"
            for f in futures:
                served = f.result(timeout=10)
                assert served.ids.shape == (5,)
            assert batcher.stats.requests == len(futures)
