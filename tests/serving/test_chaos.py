"""Chaos suite: retry, hedge, breaker, and degradation invariants.

Deterministic fault injection (seeded models from
:mod:`repro.serving.faults`) drives the searcher's survival machinery
(:class:`repro.core.hierarchical.RetrievalPolicy`). The invariants here are
the acceptance criteria of the fault-tolerance layer:

- a crash-stopped shard degrades the batch instead of aborting it, and
  queries routed to surviving clusters score exactly what they score on a
  healthy fleet;
- a transient shard recovers inside the retry budget and leaves
  ``failed_shards`` empty;
- a straggling shard is cut off by the deadline or outrun by a hedge;
- repeated failures open the circuit breaker, which stops probing the dead
  shard until the cooldown expires.
"""

import numpy as np
import pytest

from repro.core.errors import RetrievalUnavailableError
from repro.core.hierarchical import HermesSearcher, RetrievalPolicy
from repro.metrics.ndcg import ndcg_single
from repro.serving.faults import (
    FaultInjector,
    OutageWindow,
    Straggler,
    TransientFault,
    kill_shards,
)


@pytest.fixture(scope="module")
def healthy_result(clustered, small_queries):
    return HermesSearcher(clustered).search(small_queries.embeddings, clusters_to_search=3)


class TestCrashStopDegradation:
    """1 of 10 shards crash-stopped: degrade, never abort."""

    def test_batch_survives_with_degraded_accounting(self, clustered, small_queries):
        dead = 4
        chaotic = kill_shards(clustered, [dead], seed=0)
        searcher = HermesSearcher(chaotic, policy=RetrievalPolicy(max_attempts=2))
        result = searcher.search(small_queries.embeddings, clusters_to_search=3)
        assert result.degraded
        assert result.failed_shards == (dead,)
        assert result.ids.shape == (len(small_queries), 5)

    def test_surviving_cluster_queries_score_healthy(
        self, clustered, small_queries, healthy_result
    ):
        """Semantic clustering localises damage: queries that never routed
        to the dead shard return *exactly* their healthy results."""
        dead = 4
        chaotic = kill_shards(clustered, [dead], seed=0)
        searcher = HermesSearcher(chaotic, policy=RetrievalPolicy(max_attempts=2))
        result = searcher.search(small_queries.embeddings, clusters_to_search=3)

        surviving = [
            qi
            for qi in range(len(small_queries))
            if dead not in set(healthy_result.routing.clusters[qi].tolist())
        ]
        assert surviving, "fixture corpus must leave some queries unaffected"
        for qi in surviving:
            np.testing.assert_array_equal(result.ids[qi], healthy_result.ids[qi])

    def test_ndcg_on_surviving_queries_unchanged(
        self, clustered, small_queries, small_corpus, healthy_result
    ):
        from repro.baselines.monolithic import MonolithicRetriever

        dead = 4
        truth = MonolithicRetriever(small_corpus.embeddings).ground_truth(
            small_queries.embeddings, 5
        )[1]
        chaotic = kill_shards(clustered, [dead], seed=0)
        searcher = HermesSearcher(chaotic, policy=RetrievalPolicy(max_attempts=2))
        result = searcher.search(small_queries.embeddings, clusters_to_search=3)
        for qi in range(len(small_queries)):
            if dead in set(healthy_result.routing.clusters[qi].tolist()):
                continue
            assert ndcg_single(result.ids[qi], truth[qi]) == pytest.approx(
                ndcg_single(healthy_result.ids[qi], truth[qi])
            )

    def test_all_shards_dead_raises_unavailable(self, clustered, small_queries):
        chaotic = kill_shards(clustered, range(clustered.n_clusters), seed=0)
        searcher = HermesSearcher(chaotic, policy=RetrievalPolicy(max_attempts=2))
        with pytest.raises(RetrievalUnavailableError):
            searcher.search(small_queries.embeddings, clusters_to_search=3)


class TestTransientRecovery:
    def test_retry_absorbs_deep_search_outage(
        self, clustered, small_queries, healthy_result
    ):
        """Shard fails its first deep search (call 1; call 0 is the sampling
        probe), the retry succeeds: no failed shards, results healthy."""
        flaky_shard = 2
        chaotic = FaultInjector(seed=5).wrap(
            clustered, {flaky_shard: OutageWindow(start_call=1, n_calls=1)}
        )
        searcher = HermesSearcher(chaotic, policy=RetrievalPolicy(max_attempts=3))
        result = searcher.search(small_queries.embeddings, clusters_to_search=3)
        assert result.failed_shards == ()
        assert not result.degraded
        np.testing.assert_array_equal(result.ids, healthy_result.ids)
        stats = {s.shard_id: s for s in result.shard_stats}
        assert stats[flaky_shard].attempts == 2
        assert stats[flaky_shard].outcome == "ok"
        assert result.shard_queries_attempted > result.shard_queries

    def test_retry_budget_exhausted_degrades(self, clustered, small_queries):
        flaky_shard = 2
        chaotic = FaultInjector(seed=5).wrap(
            clustered, {flaky_shard: TransientFault(1.0)}  # always failing
        )
        searcher = HermesSearcher(chaotic, policy=RetrievalPolicy(max_attempts=2))
        result = searcher.search(small_queries.embeddings, clusters_to_search=10)
        assert flaky_shard in result.failed_shards
        stats = {s.shard_id: s for s in result.shard_stats}
        # Sampling already failed (probe not retried), so the deep fan-out
        # routed around the shard — or, if routed, exhausted its attempts.
        if flaky_shard in stats:
            assert stats[flaky_shard].outcome == "transient-exhausted"
            assert stats[flaky_shard].attempts == 2

    def test_backoff_sequence_is_bounded(self, clustered, small_queries):
        policy = RetrievalPolicy(max_attempts=3, backoff_s=0.01)
        flaky_shard = 1
        chaotic = FaultInjector(seed=5).wrap(
            clustered, {flaky_shard: OutageWindow(start_call=1, n_calls=2)}
        )
        searcher = HermesSearcher(chaotic, policy=policy)
        result = searcher.search(small_queries.embeddings, clusters_to_search=3)
        assert result.failed_shards == ()
        stats = {s.shard_id: s for s in result.shard_stats}
        assert stats[flaky_shard].attempts == 3


class TestDeadlinesAndHedging:
    def test_deadline_cuts_off_straggler(self, clustered, small_queries):
        slow_shard = 1
        chaotic = FaultInjector(seed=5).wrap(
            clustered, {slow_shard: Straggler(0.6, calls=[1])}
        )
        searcher = HermesSearcher(chaotic, policy=RetrievalPolicy(deadline_s=0.1))
        result = searcher.search(small_queries.embeddings, clusters_to_search=10)
        assert slow_shard in result.failed_shards
        stats = {s.shard_id: s for s in result.shard_stats}
        assert stats[slow_shard].outcome == "timeout"
        assert stats[slow_shard].latency_s < 0.5  # bailed before the straggle

    def test_hedge_outruns_straggler(self, clustered, small_queries, healthy_result):
        """Only the primary deep request (call 1) straggles; the hedged
        duplicate (call 2) runs clean and wins."""
        slow_shard = 1
        chaotic = FaultInjector(seed=5).wrap(
            clustered, {slow_shard: Straggler(1.0, calls=[1])}
        )
        searcher = HermesSearcher(
            chaotic, policy=RetrievalPolicy(deadline_s=5.0, hedge_delay_s=0.03)
        )
        result = searcher.search(small_queries.embeddings, clusters_to_search=3)
        assert result.failed_shards == ()
        np.testing.assert_array_equal(result.ids, healthy_result.ids)
        stats = {s.shard_id: s for s in result.shard_stats}
        assert stats[slow_shard].hedged
        assert stats[slow_shard].attempts == 2
        assert stats[slow_shard].latency_s < 0.8  # did not wait out the straggler
        assert result.hedged_shards == (slow_shard,)

    def test_threaded_fanout_matches_serial_under_faults(
        self, clustered, small_queries
    ):
        dead = 3
        policy = RetrievalPolicy(max_attempts=2)
        serial = HermesSearcher(kill_shards(clustered, [dead], seed=0), policy=policy)
        threaded = HermesSearcher(
            kill_shards(clustered, [dead], seed=0), policy=policy, max_workers=4
        )
        a = serial.search(small_queries.embeddings, clusters_to_search=3)
        b = threaded.search(small_queries.embeddings, clusters_to_search=3)
        np.testing.assert_array_equal(a.ids, b.ids)
        assert a.failed_shards == b.failed_shards == (dead,)


class TestCircuitBreaker:
    def test_breaker_opens_and_stops_probing(self, clustered, small_queries):
        dead = 0
        chaotic = kill_shards(clustered, [dead], seed=0)
        searcher = HermesSearcher(
            chaotic,
            policy=RetrievalPolicy(
                max_attempts=2, breaker_threshold=2, breaker_cooldown=3
            ),
        )
        q = small_queries.embeddings
        searcher.search(q, clusters_to_search=3)
        searcher.search(q, clusters_to_search=3)  # second failure trips it
        assert searcher.health.is_open(dead)
        calls_when_open = chaotic.shards[dead].calls
        result = searcher.search(q, clusters_to_search=3)
        # open circuit: the dead shard was not probed at all...
        assert chaotic.shards[dead].calls == calls_when_open
        # ...but the degraded-result contract still reports it
        assert dead in result.failed_shards

    def test_breaker_half_opens_after_cooldown(self, clustered, small_queries):
        dead = 0
        chaotic = kill_shards(clustered, [dead], seed=0)
        searcher = HermesSearcher(
            chaotic,
            policy=RetrievalPolicy(
                max_attempts=2, breaker_threshold=2, breaker_cooldown=3
            ),
        )
        q = small_queries.embeddings
        for _ in range(2):
            searcher.search(q, clusters_to_search=3)
        assert searcher.health.is_open(dead)
        probed_before = chaotic.shards[dead].calls
        # tick() runs at the start of each search: cooldown 3 skips two
        # full batches before the half-open probe on the third.
        searcher.search(q, clusters_to_search=3)  # cooldown 3 -> 2
        searcher.search(q, clusters_to_search=3)  # cooldown 2 -> 1
        assert chaotic.shards[dead].calls == probed_before
        searcher.search(q, clusters_to_search=3)  # half-open: probes again
        assert chaotic.shards[dead].calls > probed_before
        assert searcher.health.is_open(dead)  # probe failed: re-opened

    def test_breaker_closes_on_recovery(self, clustered, small_queries):
        flaky = 0
        # Down for sampling+deep of two batches (calls 0-1), then healthy.
        chaotic = FaultInjector(seed=5).wrap(
            clustered, {flaky: OutageWindow(start_call=0, n_calls=2)}
        )
        searcher = HermesSearcher(
            chaotic,
            policy=RetrievalPolicy(
                max_attempts=1, breaker_threshold=2, breaker_cooldown=1
            ),
        )
        q = small_queries.embeddings
        searcher.search(q, clusters_to_search=3)
        searcher.search(q, clusters_to_search=3)
        assert searcher.health.is_open(flaky)
        searcher.search(q, clusters_to_search=3)  # cooldown expires
        result = searcher.search(q, clusters_to_search=3)  # healthy again
        assert flaky not in result.failed_shards
        assert not searcher.health.is_open(flaky)


class TestDeterminism:
    def test_same_seed_same_results_and_schedule(self, clustered, small_queries):
        """Satellite: a chaotic run is a pure function of its seed."""

        def run_once():
            chaotic = FaultInjector(seed=9).wrap(
                clustered,
                {
                    1: TransientFault(0.5),
                    4: TransientFault(0.3),
                    7: [Straggler(1e-4, heavy_tail_alpha=2.0)],
                },
            )
            searcher = HermesSearcher(
                chaotic,
                policy=RetrievalPolicy(
                    max_attempts=2, breaker_threshold=3, breaker_cooldown=2
                ),
            )
            ids = []
            failed = []
            for _ in range(5):
                r = searcher.search(small_queries.embeddings, clusters_to_search=3)
                ids.append(r.ids.copy())
                failed.append(r.failed_shards)
            logs = {s: list(chaotic.shards[s].log) for s in (1, 4, 7)}
            return ids, failed, logs

        ids_a, failed_a, logs_a = run_once()
        ids_b, failed_b, logs_b = run_once()
        assert failed_a == failed_b
        assert logs_a == logs_b
        for a, b in zip(ids_a, ids_b):
            np.testing.assert_array_equal(a, b)
