"""Tests for the serving frontend: cache façade + dynamic batcher."""

import numpy as np
import pytest

from repro.core.hierarchical import HermesSearcher
from repro.serving.cache import (
    EXACT_HIT,
    MISS,
    ROUTING_HIT,
    SEMANTIC_HIT,
    CacheConfig,
    RetrievalCache,
)
from repro.serving.frontend import DynamicBatcher, ServingFrontend


@pytest.fixture(scope="module")
def searcher(clustered):
    return HermesSearcher(clustered)


@pytest.fixture(scope="module")
def queries(small_queries):
    return small_queries.embeddings


def exact_only_frontend(searcher, capacity=64):
    return ServingFrontend(
        searcher,
        cache_config=CacheConfig(
            capacity=capacity, semantic_threshold=None, routing_threshold=None
        ),
    )


def jitter(q: np.ndarray, scale: float, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (q + rng.normal(scale=scale, size=q.shape)).astype(np.float32)


class TestExactPathEquivalence:
    def test_cold_and_warm_match_direct_search(self, searcher, queries):
        q = queries[:12]
        frontend = exact_only_frontend(searcher)
        direct = searcher.search(q, k=5)
        cold = frontend.search(q, k=5)
        warm = frontend.search(q, k=5)
        for res, kinds in ((cold, MISS), (warm, EXACT_HIT)):
            assert (res.kinds == kinds).all()
            assert np.array_equal(res.ids, direct.ids)
            assert np.array_equal(res.distances, direct.distances)
        assert cold.searched == 12
        assert warm.searched == 0 and warm.shard_queries == 0

    def test_partial_hits_mix(self, searcher, queries):
        frontend = exact_only_frontend(searcher)
        frontend.search(queries[:4], k=5)
        mixed = frontend.search(queries[:8], k=5)
        assert (mixed.kinds[:4] == EXACT_HIT).all()
        assert (mixed.kinds[4:] == MISS).all()
        direct = searcher.search(queries[:8], k=5)
        assert np.array_equal(mixed.ids, direct.ids)
        # The miss rows re-search as a smaller sub-batch, so distances only
        # match up to float32 GEMM accumulation (ids must still be exact).
        assert np.allclose(mixed.distances, direct.distances, rtol=1e-5, atol=1e-6)

    def test_in_batch_dedupe(self, searcher, queries):
        q = np.repeat(queries[:4], 4, axis=0)  # 16 rows, 4 unique
        frontend = exact_only_frontend(searcher)
        res = frontend.search(q, k=5)
        assert res.searched == 4
        direct = searcher.search(q, k=5)
        assert np.array_equal(res.ids, direct.ids)
        # Dedupe searches 4 unique rows instead of 16: same ids, distances
        # equal up to float32 GEMM accumulation.
        assert np.allclose(res.distances, direct.distances, rtol=1e-5, atol=1e-6)
        assert frontend.cache.stats.inserts == 4

    def test_per_call_params_respected(self, searcher, queries):
        frontend = exact_only_frontend(searcher)
        frontend.search(queries[:2], k=5)
        other_k = frontend.search(queries[:2], k=3)
        assert (other_k.kinds == MISS).all()  # different params never hit
        assert other_k.ids.shape == (2, 3)


class TestSemanticAndRoutingPaths:
    def test_near_duplicates_hit_semantic_tier(self, searcher, queries):
        q = queries[:6]
        frontend = ServingFrontend(
            searcher,
            cache_config=CacheConfig(
                capacity=64, semantic_threshold=0.995, routing_threshold=0.98
            ),
        )
        base = frontend.search(q, k=5)
        near = frontend.search(jitter(q, 1e-3), k=5)
        assert (near.kinds == SEMANTIC_HIT).all()
        assert np.array_equal(near.ids, base.ids)
        assert near.shard_queries == 0

    def test_routing_tier_skips_sample_search(self, searcher, queries):
        q = queries[:4]
        cache = RetrievalCache(
            CacheConfig(capacity=64, semantic_threshold=None, routing_threshold=0.9)
        )
        frontend = ServingFrontend(searcher, cache=cache)
        frontend.search(q, k=5)
        res = frontend.search(jitter(q, 2e-2), k=5)
        assert (res.kinds == ROUTING_HIT).all()
        assert res.searched == 4  # deep search still runs ...
        assert cache.stats.routing_hits == 4  # ... but without sample search
        assert (res.ids >= -1).all() and res.ids.shape == (4, 5)

    def test_cache_and_config_mutually_exclusive(self, searcher):
        with pytest.raises(ValueError):
            ServingFrontend(
                searcher, cache=RetrievalCache(), cache_config=CacheConfig()
            )


class TestGenerationAwareCaching:
    def test_mutation_invalidates_cached_results(self):
        # A private datastore: mutation would poison the shared fixture.
        from repro.core.clustering import cluster_datastore
        from repro.core.config import HermesConfig
        from repro.datastore.embeddings import make_corpus

        corpus = make_corpus(500, n_topics=4, dim=32, seed=31)
        config = HermesConfig(n_clusters=2, clusters_to_search=2, nlist=8)
        datastore = cluster_datastore(corpus.embeddings, config)
        searcher = HermesSearcher(datastore, config=config)
        frontend = ServingFrontend(
            searcher,
            cache_config=CacheConfig(
                capacity=32, semantic_threshold=None, routing_threshold=None
            ),
        )
        rng = np.random.default_rng(32)
        q = rng.normal(size=(4, 32)).astype(np.float32)

        frontend.search(q, k=5)
        warm = frontend.search(q, k=5)
        assert (warm.kinds == EXACT_HIT).all()

        # Delete a document: the datastore generation bumps, so the cached
        # answers (which may contain the deleted id) must not be served.
        datastore.delete_documents([int(warm.ids[0, 0])])
        after = frontend.search(q, k=5)
        assert (after.kinds == MISS).all()
        assert int(warm.ids[0, 0]) not in after.ids
        assert frontend.cache.stats.stale_generation > 0

        # The post-mutation answers re-cache against the new generation.
        rewarm = frontend.search(q, k=5)
        assert (rewarm.kinds == EXACT_HIT).all()
        np.testing.assert_array_equal(rewarm.ids, after.ids)

    def test_compaction_preserves_cached_results(self):
        from repro.core.clustering import cluster_datastore
        from repro.core.config import HermesConfig
        from repro.datastore.embeddings import make_corpus

        corpus = make_corpus(500, n_topics=4, dim=32, seed=33)
        config = HermesConfig(n_clusters=2, clusters_to_search=2, nlist=8)
        datastore = cluster_datastore(corpus.embeddings, config)
        frontend = exact_only_frontend(HermesSearcher(datastore, config=config))
        rng = np.random.default_rng(34)
        datastore.add_documents(rng.normal(size=(6, 32)).astype(np.float32))
        q = rng.normal(size=(4, 32)).astype(np.float32)

        frontend.search(q, k=5)
        warm = frontend.search(q, k=5)
        assert (warm.kinds == EXACT_HIT).all()

        # Compaction is result-preserving (the mutation-equivalence
        # contract), so the generation the cache keys on must not move and
        # the warm entries keep serving — no needless full flush.
        generation = datastore.generation
        assert datastore.compact() > 0
        assert datastore.generation == generation
        after = frontend.search(q, k=5)
        assert (after.kinds == EXACT_HIT).all()
        np.testing.assert_array_equal(after.ids, warm.ids)
        assert frontend.cache.stats.stale_generation == 0


class TestDynamicBatcher:
    def test_futures_match_batch_search(self, searcher, queries):
        q = queries[:8]
        frontend = exact_only_frontend(searcher)
        direct = searcher.search(q, k=5)
        with DynamicBatcher(frontend, max_batch=8, max_wait_s=0.05) as batcher:
            futures = [batcher.submit(row, k=5) for row in q]
            rows = [f.result(timeout=10) for f in futures]
        for i, (dists, ids, kind, level) in enumerate(rows):
            assert np.array_equal(ids, direct.ids[i])
            assert np.array_equal(dists, direct.distances[i])
            assert kind in (MISS, EXACT_HIT)
            assert level == 0  # no admission controller: full quality
        assert batcher.stats.requests == 8
        assert batcher.stats.batches < 8  # coalescing actually happened

    def test_max_batch_bounds_coalescing(self, searcher, queries):
        frontend = exact_only_frontend(searcher)
        with DynamicBatcher(frontend, max_batch=4, max_wait_s=0.05) as batcher:
            futures = [batcher.submit(row, k=5) for row in queries[:8]]
            for f in futures:
                f.result(timeout=10)
        assert batcher.stats.max_batch <= 4
        assert batcher.stats.batches >= 2

    def test_incompatible_params_split_batches(self, searcher, queries):
        frontend = exact_only_frontend(searcher)
        with DynamicBatcher(frontend, max_batch=8, max_wait_s=0.05) as batcher:
            f1 = batcher.submit(queries[0], k=5)
            f2 = batcher.submit(queries[1], k=3)
            assert f1.result(timeout=10)[1].shape == (5,)
            assert f2.result(timeout=10)[1].shape == (3,)
        assert batcher.stats.batches == 2

    def test_submit_after_close_raises(self, searcher, queries):
        batcher = DynamicBatcher(exact_only_frontend(searcher), max_wait_s=0.0)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(queries[0])

    def test_validation(self, searcher):
        frontend = exact_only_frontend(searcher)
        with pytest.raises(ValueError):
            DynamicBatcher(frontend, max_batch=0)
        with pytest.raises(ValueError):
            DynamicBatcher(frontend, max_wait_s=-1.0)
        with DynamicBatcher(frontend) as batcher:
            with pytest.raises(ValueError):
                batcher.submit(np.zeros((2, 4), dtype=np.float32))
