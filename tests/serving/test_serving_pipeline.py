"""Tests for the live end-to-end serving pipeline (stride scheduler).

The pipeline composes two clocks — measured wall time for encode/retrieval
through the live batcher, modelled :class:`InferenceModel` latency for
prefill/decode — into one virtual timeline per request. These tests pin the
timeline arithmetic (TTFT identity, sequential telescoping, trace
reconstruction closing exactly at ``e2e_s``), the discipline semantics
(speculative/verify/fallback flags, hit/miss counters), and the serving
contracts (deadline shedding, fresh-registry metrics).
"""

import numpy as np
import pytest

from repro.core.clustering import cluster_datastore
from repro.core.config import HermesConfig
from repro.core.hierarchical import HermesSearcher
from repro.datastore.chunkstore import ChunkStore
from repro.datastore.corpus import CorpusGenerator, TokenVocabulary, chunk_documents
from repro.datastore.encoder import SyntheticEncoder
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import Tracer
from repro.obs.validate import validate_trace
from repro.serving.pipeline import (
    PIPELINE_MODES,
    PipelineConfig,
    RAGServingPipeline,
)

N_STRIDES = 4
THRESHOLD = 0.95


@pytest.fixture(scope="module")
def stack():
    """Small token corpus + clustered datastore + searcher + chunk store."""
    vocab = TokenVocabulary(n_topics=4, pool_size=200, common_size=100)
    gen = CorpusGenerator(vocab, doc_tokens=128, topical_fraction=0.8, seed=1)
    chunks = chunk_documents(gen.generate(150), chunk_tokens=64)
    encoder = SyntheticEncoder(dim=32, seed=0)
    datastore = cluster_datastore(
        encoder.encode_chunks(chunks),
        HermesConfig(n_clusters=4, clusters_to_search=2, nlist=8),
    )
    return HermesSearcher(datastore), encoder, ChunkStore(chunks), chunks


@pytest.fixture(scope="module")
def requests(stack):
    """Three long (speculation-friendly) + two short (drift-heavy) requests."""
    _, _, _, chunks = stack
    rng = np.random.default_rng(2)
    out = []
    for i in range(5):
        source = chunks[int(rng.integers(len(chunks)))].tokens
        out.append(np.asarray(rng.choice(source, size=64 if i < 3 else 8)))
    return out


@pytest.fixture()
def fresh_registry():
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


def serve(stack, requests, mode, *, tracer=None, **overrides):
    searcher, encoder, store, _ = stack
    config = PipelineConfig(
        mode=mode,
        n_strides=overrides.pop("n_strides", N_STRIDES),
        speculation_threshold=overrides.pop("speculation_threshold", THRESHOLD),
        **overrides,
    )
    with RAGServingPipeline(
        searcher, encoder, store, config=config, tracer=tracer, seed=0
    ) as pipeline:
        return pipeline.serve(requests)


class TestConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            PipelineConfig(mode="telepathic")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_strides": 0},
            {"grounding": 1.5},
            {"speculation_threshold": 0.0},
            {"deadline_s": -1.0},
            {"gpu_batch": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PipelineConfig(**kwargs)

    def test_output_tokens(self):
        assert PipelineConfig(n_strides=4, stride_tokens=16).output_tokens == 64

    def test_empty_cohort_rejected(self, stack, fresh_registry):
        with pytest.raises(ValueError, match="at least one"):
            serve(stack, [], "sequential")

    def test_empty_request_rejected(self, stack, fresh_registry):
        with pytest.raises(ValueError, match="non-empty"):
            serve(stack, [np.empty(0, dtype=np.int64)], "sequential")


class TestTimelineArithmetic:
    @pytest.mark.parametrize("mode", PIPELINE_MODES)
    def test_ttft_is_encode_plus_first_retrieval_plus_prefill(
        self, stack, requests, fresh_registry, mode
    ):
        """Stride 0 blocks in every discipline: the satellite TTFT identity."""
        report = serve(stack, requests, mode)
        assert report.shed == 0
        for result in report.requests:
            first = result.strides[0]
            assert result.ttft_s == pytest.approx(
                first.encode_s + first.retrieval_s + first.prefill_s, abs=1e-12
            )
            assert result.ttft_s < result.e2e_s

    def test_sequential_e2e_telescopes(self, stack, requests, fresh_registry):
        """Sequential: e2e is exactly sum of windows + n_strides blocks."""
        report = serve(stack, requests, "sequential")
        for result in report.requests:
            windows = sum(s.encode_s + s.retrieval_s for s in result.strides)
            assert result.e2e_s == pytest.approx(
                windows + N_STRIDES * report.block_s, rel=1e-9
            )

    def test_overlap_beats_sequential_e2e(self, stack, requests, fresh_registry):
        """Each overlapped stride costs max(block, window), not block+window;
        the block dominates these windows, so the win is deterministic."""
        seq = serve(stack, requests, "sequential")
        pipe = serve(stack, requests, "pipelined")
        assert pipe.mean_e2e_s < seq.mean_e2e_s

    @pytest.mark.parametrize("mode", PIPELINE_MODES)
    def test_energy_accounted(self, stack, requests, fresh_registry, mode):
        report = serve(stack, requests, mode)
        for result in report.requests:
            assert result.cpu_energy_j > 0
            assert result.gpu_energy_j > 0
            assert result.total_energy_j == pytest.approx(
                result.cpu_energy_j + result.gpu_energy_j
            )


class TestDisciplineSemantics:
    def test_sequential_never_speculates(self, stack, requests, fresh_registry):
        report = serve(stack, requests, "sequential")
        assert report.lookahead_hits == report.lookahead_misses == 0
        for result in report.requests:
            assert len(result.strides) == N_STRIDES
            for rec in result.strides:
                assert not rec.speculative
                assert rec.verify_s == 0.0 and rec.fallback_s == 0.0

    def test_pipelined_uses_stale_results_unverified(
        self, stack, requests, fresh_registry
    ):
        report = serve(stack, requests, "pipelined")
        assert report.lookahead_hits == report.lookahead_misses == 0
        for result in report.requests:
            for rec in result.strides[1:]:
                assert rec.speculative
                assert rec.verify_s == 0.0 and rec.fallback_s == 0.0
                # the evaluation query is the context-complete one, kept
                # separately from the stale query that produced the ids
                assert rec.true_query is not rec.query

    def test_lookahead_hits_and_misses(self, stack, requests, fresh_registry):
        report = serve(stack, requests, "lookahead")
        assert report.lookahead_hits > 0  # long requests barely drift
        assert report.lookahead_misses > 0  # short requests drift past 0.95
        assert (
            report.lookahead_hits + report.lookahead_misses
            == len(requests) * (N_STRIDES - 1)
        )
        for result in report.requests:
            for rec in result.strides[1:]:
                if rec.speculative:  # verified hit: pays the verify encode
                    assert rec.verify_s > 0.0 and rec.fallback_s == 0.0
                else:  # miss: wasted window recorded, fresh search reuses
                    # the verify embedding (encode_s folded into verify_s)
                    assert rec.fallback_s > 0.0 and rec.encode_s == 0.0
        wasted = sum(r.wasted_retrieval_s for r in report.requests)
        assert wasted > 0.0

    def test_counters_surface_in_registry(self, stack, requests, fresh_registry):
        report = serve(stack, requests, "lookahead")
        snapshot = fresh_registry.snapshot()
        assert snapshot["pipeline_requests_total"] == len(requests)
        assert snapshot["pipeline_lookahead_hits_total"] == report.lookahead_hits
        assert (
            snapshot["pipeline_lookahead_misses_total"] == report.lookahead_misses
        )


class TestDeadlines:
    def test_spent_deadline_sheds_every_request(
        self, stack, requests, fresh_registry
    ):
        report = serve(stack, requests, "sequential", deadline_s=1e-9)
        assert report.shed == len(requests)
        assert not report.completed
        for result in report.requests:
            assert result.shed is not None
            assert "Deadline" in result.shed
        assert fresh_registry.snapshot()["pipeline_shed_total"] == len(requests)

    def test_generous_deadline_sheds_nothing(
        self, stack, requests, fresh_registry
    ):
        report = serve(stack, requests, "lookahead", deadline_s=120.0)
        assert report.shed == 0


class TestTrace:
    @pytest.mark.parametrize("mode", PIPELINE_MODES)
    def test_trace_telescopes_to_e2e(self, stack, requests, fresh_registry, mode):
        """The reconstructed span tree closes exactly at the measured e2e."""
        tracer = Tracer(enabled=True)
        report = serve(stack, requests, mode, tracer=tracer)
        roots = tracer.finished_roots()
        validate_trace(roots)
        assert len(roots) == len(report.requests)
        by_rid = {r.attrs["request"]: r for r in roots}
        for result in report.requests:
            root = by_rid[result.request_id]
            assert root.attrs["mode"] == mode
            assert root.end_s == pytest.approx(result.e2e_s, abs=1e-9)
            # the child cursor telescopes to the root close, i.e. the last
            # reconstructed span ends where the request ends
            assert max(c.end_s for c in root.children) == pytest.approx(
                result.e2e_s, abs=1e-9
            )

    def test_workers_and_overlap_visible(self, stack, requests, fresh_registry):
        tracer = Tracer(enabled=True)
        serve(stack, requests, "lookahead", tracer=tracer)
        overlap = 0.0
        for root in tracer.finished_roots():
            cpu = [c for c in root.children if c.name in ("encode", "retrieval")]
            gpu = [c for c in root.children if c.name in ("prefill", "decode")]
            assert all(c.worker == "cpu" for c in cpu)
            assert all(c.worker == "gpu" for c in gpu)
            for spec in cpu:
                if not spec.attrs.get("speculative"):
                    continue
                for block in gpu:
                    overlap += max(
                        0.0,
                        min(spec.end_s, block.end_s)
                        - max(spec.start_s, block.start_s),
                    )
        assert overlap > 0.0  # speculative retrieval ran under the gpu block

    def test_untraced_run_emits_nothing(self, stack, requests, fresh_registry):
        tracer = Tracer(enabled=False)
        serve(stack, requests, "lookahead", tracer=tracer)
        assert tracer.finished_roots() == []
