"""Unit tests for the span tracer: clocks, nesting, workers, exporters."""

import json
import threading

import numpy as np
import pytest

from repro.obs.trace import (
    ManualClock,
    Tracer,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    spans_to_json,
    trace_skeleton,
)

pytestmark = pytest.mark.obs


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def tracer(clock):
    return Tracer(clock=clock, enabled=True)


class TestManualClock:
    def test_advances_and_sleeps(self, clock):
        assert clock() == 0.0
        clock.advance(1.5)
        clock.sleep(0.5)
        assert clock() == 2.0

    def test_negative_advance_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-0.1)


class TestSpanNesting:
    def test_context_manager_nests_and_times(self, tracer, clock):
        with tracer.span("outer", k=10) as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(0.25)
        assert outer.name == "outer"
        assert outer.attrs == {"k": 10}
        assert outer.duration_s == pytest.approx(1.25)
        assert inner.duration_s == pytest.approx(0.25)
        assert outer.children == [inner]
        assert tracer.finished_roots() == [outer]

    def test_siblings_attach_in_order(self, tracer, clock):
        with tracer.span("root"):
            with tracer.span("a"):
                clock.advance(0.1)
            with tracer.span("b"):
                clock.advance(0.1)
        (root,) = tracer.finished_roots()
        assert [c.name for c in root.children] == ["a", "b"]

    def test_span_closes_on_exception(self, tracer, clock):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                clock.advance(0.5)
                raise RuntimeError("fail inside span")
        (root,) = tracer.finished_roots()
        assert root.finished
        assert root.duration_s == pytest.approx(0.5)

    def test_set_attrs_inside_block(self, tracer):
        with tracer.span("s") as span:
            span.set(result="hit", n=3)
        assert span.attrs == {"result": "hit", "n": 3}

    def test_decorator_records_call(self, tracer, clock):
        @tracer.traced("work", kind="unit")
        def work(x):
            clock.advance(0.1)
            return x * 2

        assert work(21) == 42
        (root,) = tracer.finished_roots()
        assert root.name == "work"
        assert root.attrs == {"kind": "unit"}
        assert root.duration_s == pytest.approx(0.1)

    def test_walk_find_total(self, tracer, clock):
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("leaf"):
                    clock.advance(0.2)
        (root,) = tracer.finished_roots()
        assert len(root.find_all("leaf")) == 3
        assert root.total("leaf") == pytest.approx(0.6)
        assert root.find("leaf") is root.children[0]
        assert root.find("missing") is None


class TestWorkers:
    def test_worker_inherited_from_parent(self, tracer):
        with tracer.span("root", worker="node3") as root:
            with tracer.span("child") as child:
                pass
        assert root.worker == "node3"
        assert child.worker == "node3"

    def test_explicit_parent_crosses_threads(self, tracer, clock):
        with tracer.span("fanout") as parent:
            def shard_work(sid):
                with tracer.span("shard", parent=parent, worker=f"shard{sid}"):
                    pass

            threads = [
                threading.Thread(target=shard_work, args=(sid,)) for sid in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert sorted(c.worker for c in parent.children) == [
            "shard0",
            "shard1",
            "shard2",
        ]
        # without an explicit parent, a pool thread would start its own root
        assert tracer.finished_roots() == [parent]


class TestSuppression:
    def test_suppressed_spans_vanish(self, tracer):
        with tracer.span("kept"):
            with tracer.suppressed():
                with tracer.span("dropped"):
                    pass
        (root,) = tracer.finished_roots()
        assert root.find("dropped") is None

    def test_suppression_is_scoped(self, tracer):
        with tracer.suppressed():
            pass
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.finished_roots()] == ["after"]


class TestDisabled:
    def test_disabled_returns_shared_null_context(self):
        tracer = Tracer(enabled=False)
        ctx1 = tracer.span("a", shard=1)
        ctx2 = tracer.span("b")
        assert ctx1 is ctx2  # one shared singleton: no per-call allocation
        with ctx1 as span:
            span.set(anything="goes")  # null span absorbs attribute writes
        assert tracer.finished_roots() == []

    def test_module_default_starts_disabled(self):
        assert get_tracer().enabled is False

    def test_enable_disable_roundtrip(self):
        tracer = enable_tracing()
        try:
            assert get_tracer() is tracer
            with get_tracer().span("visible"):
                pass
            assert [r.name for r in tracer.finished_roots()] == ["visible"]
        finally:
            disable_tracing()
        assert get_tracer().enabled is False

    def test_set_tracer_returns_previous(self):
        replacement = Tracer(enabled=True)
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            set_tracer(previous)


class TestExplicitAPI:
    def test_start_span_and_finish(self, tracer, clock):
        root = tracer.start_span("batch", start_s=5.0, worker="batch0")
        child = tracer.record(
            "phase", start_s=5.0, end_s=7.0, parent=root, stride=0
        )
        root.finish(8.0)
        assert root.duration_s == 3.0
        assert child.worker == "batch0"  # inherited through explicit parent
        assert root.children == [child]
        assert tracer.finished_roots() == [root]

    def test_double_finish_rejected(self, tracer):
        span = tracer.start_span("s", start_s=0.0)
        span.finish(1.0)
        with pytest.raises(ValueError):
            span.finish(2.0)

    def test_end_before_start_rejected(self, tracer):
        span = tracer.start_span("s", start_s=2.0)
        with pytest.raises(ValueError):
            span.finish(1.0)

    def test_unfinished_duration_raises(self, tracer):
        span = tracer.start_span("s", start_s=0.0)
        with pytest.raises(ValueError):
            _ = span.duration_s

    def test_clear_drops_roots(self, tracer):
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.finished_roots() == []


class TestExporters:
    def _sample_tracer(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock, enabled=True)
        with tracer.span("root", worker="main", k=np.int64(5)):
            clock.advance(0.5)
            with tracer.span("deep", worker="shard0"):
                clock.advance(1.0)
        return tracer

    def test_spans_to_json_roundtrips(self):
        tracer = self._sample_tracer()
        data = json.loads(spans_to_json(tracer))
        assert data[0]["name"] == "root"
        assert data[0]["children"][0]["name"] == "deep"
        bare = json.loads(spans_to_json(tracer, times=False))
        assert "start_s" not in bare[0]

    def test_trace_skeleton_strips_durations(self):
        skeleton = trace_skeleton(self._sample_tracer())
        assert skeleton == [{"name": "root", "children": [{"name": "deep"}]}]

    def test_chrome_trace_structure(self):
        doc = chrome_trace(self._sample_tracer())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta} == {"main", "shard0"}
        assert len(complete) == 2
        root_evt = next(e for e in complete if e["name"] == "root")
        deep_evt = next(e for e in complete if e["name"] == "deep")
        assert root_evt["dur"] == pytest.approx(1.5e6)  # microseconds
        assert deep_evt["ts"] == pytest.approx(root_evt["ts"] + 0.5e6)
        assert root_evt["args"]["k"] == 5  # numpy scalar coerced to int
        assert json.dumps(doc)  # whole artifact is JSON-serializable

    def test_chrome_trace_align_roots(self):
        tracer = Tracer(enabled=True)
        tracer.record("wall", start_s=1000.0, end_s=1001.0)
        tracer.record("virtual", start_s=0.0, end_s=2.0)
        doc = chrome_trace(tracer, align_roots=True)
        starts = {
            e["name"]: e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert starts["wall"] == pytest.approx(0.0)
        assert starts["virtual"] == pytest.approx(0.0)
