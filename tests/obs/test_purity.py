"""repro.obs stays stdlib-only: no numpy/scipy, no imports of the package.

Instrumentation is woven through every hot loop, so ``repro.obs`` must be
importable with nothing but the standard library on the path — a heavy (or
circular) dependency here would tax the whole pipeline. Ruff enforces the
same contract in CI (TID251 banned-api scoped to ``src/repro/obs/**``);
this test walks the ASTs directly so the check also runs where ruff isn't
installed.
"""

import ast
import sys
from pathlib import Path

import pytest

import repro.obs

pytestmark = pytest.mark.obs

OBS_DIR = Path(repro.obs.__file__).parent
OBS_FILES = sorted(OBS_DIR.glob("*.py"))

#: Top-level module names repro.obs may import. Everything here ships with
#: CPython; notably absent: numpy, scipy, and repro itself.
ALLOWED = frozenset(sys.stdlib_module_names)


def _imported_modules(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative: stays inside repro.obs by definition
                yield node, "." * node.level + (node.module or "")
            else:
                yield node, node.module or ""


def test_found_the_module_files():
    names = {p.name for p in OBS_FILES}
    assert {"__init__.py", "trace.py", "metrics.py", "validate.py"} <= names


@pytest.mark.parametrize("path", OBS_FILES, ids=lambda p: p.name)
def test_only_stdlib_imports(path):
    violations = []
    for node, module in _imported_modules(path):
        if module.startswith("."):
            if module.startswith(".."):
                violations.append(
                    f"{path.name}:{node.lineno} escapes the package: {module}"
                )
            continue
        top = module.split(".")[0]
        if top not in ALLOWED:
            violations.append(f"{path.name}:{node.lineno} imports {module}")
    assert not violations, "repro.obs must be stdlib-only:\n" + "\n".join(violations)


def test_numpy_not_required_to_import_obs():
    # the duck-typed scalar coercion means numpy never has to be loaded for
    # the tracer itself; guard against an accidental module-level import
    import subprocess

    code = (
        "import sys, types; "
        "sys.modules['numpy'] = None; sys.modules['scipy'] = None; "
        # stub the parent package: repro/__init__ pulls in numpy-heavy
        # subpackages, but repro.obs itself must load without them
        "pkg = types.ModuleType('repro'); "
        f"pkg.__path__ = [{str(OBS_DIR.parent)!r}]; "
        "sys.modules['repro'] = pkg; "
        "import repro.obs; "
        "t = repro.obs.Tracer(enabled=True); "
        "import repro.obs.trace as tr; c = tr.ManualClock(); "
        "t2 = repro.obs.Tracer(clock=c, enabled=True); "
        "ctx = t2.span('x'); ctx.__enter__(); c.advance(1.0); ctx.__exit__(None, None, None); "
        "assert t2.finished_roots()[0].duration_s == 1.0; "
        "print('ok')"
    )
    src_dir = str(OBS_DIR.parent.parent)
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": src_dir, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"
