"""Metrics registry tests: labels, registry semantics, quantile accuracy.

The load-bearing pieces are the hypothesis property test (histogram
quantile estimates stay within one bucket boundary of exact numpy
quantiles across randomized workloads) and the thread hammer (counters
and histograms survive the PR 1/3 thread pools recording concurrently).
"""

import bisect
import math
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_labels,
    get_registry,
    set_registry,
)

pytestmark = pytest.mark.obs


class TestCounter:
    def test_inc_and_value_per_labelset(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2.0, shard=1)
        c.inc(shard=1)
        assert c.value() == 1.0
        assert c.value(shard=1) == 3.0
        assert c.total() == 4.0

    def test_label_order_does_not_matter(self):
        c = Counter("hits_total")
        c.inc(shard=1, phase="deep")
        c.inc(phase="deep", shard=1)
        assert c.value(shard=1, phase="deep") == 2.0
        assert c.labelsets() == [(("phase", "deep"), ("shard", "1"))]

    def test_negative_increment_rejected(self):
        c = Counter("ups_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_invalid_name_rejected(self):
        for bad in ("", "has space", "dash-ed", "per/sec"):
            with pytest.raises(ValueError):
                Counter(bad)

    def test_counter_thread_hammer(self):
        c = Counter("hammer_total")
        n_threads, n_incs = 8, 5000

        def hammer(tid):
            for _ in range(n_incs):
                c.inc(thread=tid % 2)

        threads = [
            threading.Thread(target=hammer, args=(tid,)) for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # without the lock, read-modify-write races would drop increments
        assert c.total() == n_threads * n_incs
        assert c.value(thread=0) + c.value(thread=1) == n_threads * n_incs


class TestGauge:
    def test_set_add_value(self):
        g = Gauge("queue_depth")
        g.set(4.0, node=0)
        g.add(-1.0, node=0)
        g.add(2.5)
        assert g.value(node=0) == 3.0
        assert g.value() == 2.5

    def test_collect_keys_are_label_tuples(self):
        g = Gauge("breakers_open")
        g.set(1.0, shard=3)
        assert g.collect() == {(("shard", "3"),): 1.0}


class TestHistogram:
    def test_snapshot_counts_and_sum(self):
        h = Histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v, phase="deep")
        snap = h.snapshot(phase="deep")
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)
        assert h.mean(phase="deep") == pytest.approx(6.05 / 4)

    def test_empty_labelset_reads(self):
        h = Histogram("lat_seconds")
        assert h.count() == 0
        assert h.total() == 0.0
        assert math.isnan(h.mean())
        assert math.isnan(h.quantile(0.5))

    def test_non_finite_observation_rejected(self):
        h = Histogram("lat_seconds")
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                h.observe(bad)

    def test_bad_bucket_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(3.0, 2.0))

    def test_bad_quantile_rejected(self):
        h = Histogram("lat_seconds")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_clamped_to_observed_range(self):
        # one sample deep inside a wide bucket: interpolation must not
        # report below the observed min or above the observed max
        h = Histogram("lat_seconds", buckets=(10.0, 100.0))
        h.observe(42.0)
        assert h.quantile(0.01) == 42.0
        assert h.quantile(0.99) == 42.0

    def test_overflow_bucket_uses_observed_max(self):
        h = Histogram("lat_seconds", buckets=(1.0,))
        h.observe(50.0)
        h.observe(90.0)
        assert h.quantile(1.0) == pytest.approx(90.0)
        assert 1.0 <= h.quantile(0.5) <= 90.0

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BUCKETS[-1] > 30.0
        assert all(
            b2 > b1
            for b1, b2 in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:])
        )

    def test_histogram_thread_hammer(self):
        h = Histogram("lat_seconds", buckets=(0.5,))
        n_threads, n_obs = 8, 2000

        def hammer(tid):
            for i in range(n_obs):
                h.observe(0.25 if i % 2 else 0.75, thread=tid % 2)

        threads = [
            threading.Thread(target=hammer, args=(tid,)) for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = h.count(thread=0) + h.count(thread=1)
        assert total == n_threads * n_obs
        expected_sum = n_threads * n_obs * 0.5  # half 0.25, half 0.75
        assert h.total(thread=0) + h.total(thread=1) == pytest.approx(expected_sum)


def _bucket_index(bounds, value):
    """Index of the bucket a value lands in (len(bounds) = overflow)."""
    return bisect.bisect_left(bounds, value)


class TestQuantileProperty:
    """Estimates land in the same bucket as the exact sample quantile.

    Fixed-bucket histograms cannot beat bucket resolution, but the docstring
    contract is that the interpolated estimate never leaves the bucket that
    contains the target rank — so it is within one bucket boundary of the
    exact rank-based sample quantile (numpy's ``inverted_cdf`` method, the
    same rank definition the bucket walk uses; at a bucket edge the exact
    value may sit in the adjacent bucket).
    """

    BOUNDS = DEFAULT_LATENCY_BUCKETS

    @settings(max_examples=200, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-6, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=400,
        ),
        q=st.sampled_from([0.5, 0.9, 0.95, 0.99]),
    )
    def test_estimate_within_one_bucket_of_numpy(self, samples, q):
        h = Histogram("lat_seconds", buckets=self.BOUNDS)
        for v in samples:
            h.observe(v)
        estimate = h.quantile(q)
        exact = float(np.quantile(np.asarray(samples), q, method="inverted_cdf"))
        est_idx = _bucket_index(self.BOUNDS, estimate)
        exact_idx = _bucket_index(self.BOUNDS, exact)
        assert abs(est_idx - exact_idx) <= 1, (
            f"estimate {estimate} (bucket {est_idx}) vs numpy {exact} "
            f"(bucket {exact_idx}) for q={q}, n={len(samples)}"
        )
        # and the estimate always stays inside the observed value range
        assert min(samples) <= estimate <= max(samples)

    @settings(max_examples=100, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=2,
            max_size=200,
        )
    )
    def test_median_monotone_in_rank(self, samples):
        h = Histogram("lat_seconds", buckets=self.BOUNDS)
        for v in samples:
            h.observe(v)
        # quantile estimates must be monotonically non-decreasing in q
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert all(b >= a for a, b in zip(qs, qs[1:]))


class TestFormatLabels:
    def test_empty_and_rendered(self):
        assert format_labels(()) == ""
        assert format_labels((("phase", "deep"), ("shard", "2"))) == (
            '{phase="deep",shard="2"}'
        )


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        assert reg.get("x_total") is reg.counter("x_total")
        assert reg.get("missing") is None

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_snapshot_flat_rendered_keys(self):
        reg = MetricsRegistry()
        reg.counter("hits_total").inc(3.0, shard=1)
        reg.gauge("depth").set(2.0)
        h = reg.histogram("lat_seconds", buckets=(1.0, 10.0))
        h.observe(0.5, phase="deep")
        snap = reg.snapshot()
        assert snap['hits_total{shard="1"}'] == 3.0
        assert snap["depth"] == 2.0
        assert snap['lat_seconds_count{phase="deep"}'] == 1
        assert snap['lat_seconds_sum{phase="deep"}'] == 0.5
        assert snap['lat_seconds_p50{phase="deep"}'] == 0.5

    def test_reset_and_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        reg.reset()
        assert reg.names() == []

    def test_set_registry_swaps_default(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            restored = set_registry(previous)
            assert restored is fresh
