"""Latency-accounting invariants over real pipeline traces.

The harness half of the observability PR: every traced slice of the
pipeline — hierarchical retrieval on the wall clock, the DES simulator and
the generation timeline on virtual clocks — must produce span trees where
time is accounted coherently (children inside parents, same-worker siblings
serialized, same-worker child durations summing to at most the parent).
The DES case is held to the strictest bar: phase children tile each batch's
interval exactly, so their durations reconstruct the simulator's own
reported latency to the last bit.
"""

import numpy as np
import pytest

from repro.core.hierarchical import HermesSearcher
from repro.llm.generation import (
    GenerationConfig,
    RetrievalCost,
    constant_retrieval,
    simulate_generation,
)
from repro.llm.inference import InferenceModel
from repro.obs.trace import Tracer
from repro.obs.validate import (
    TraceInvariantError,
    validate_span_tree,
    validate_trace,
)
from repro.serving.faults import FleetFaultSchedule, NodeOutage, NodeSlowdown
from repro.serving.simulator import PipelineSimulator, StagePlan

pytestmark = pytest.mark.obs


# ---------------------------------------------------------------------------
# Validator semantics (synthetic trees)
# ---------------------------------------------------------------------------


def _span_tree(tracer_builder):
    tracer = Tracer(enabled=True)
    tracer_builder(tracer)
    return tracer.finished_roots()


class TestValidatorSemantics:
    def test_accepts_wellformed_tree(self):
        def build(t):
            root = t.start_span("root", start_s=0.0, worker="w")
            t.record("a", start_s=0.0, end_s=1.0, parent=root)
            t.record("b", start_s=1.0, end_s=2.0, parent=root)
            root.finish(2.0)

        roots = _span_tree(build)
        assert validate_trace(roots) == 3

    def test_rejects_unfinished_span(self):
        tracer = Tracer(enabled=True)
        root = tracer.start_span("root", start_s=0.0)
        with pytest.raises(TraceInvariantError, match="never finished"):
            validate_span_tree(root)

    def test_rejects_child_escaping_parent(self):
        def build(t):
            root = t.start_span("root", start_s=0.0, worker="w")
            t.record("late", start_s=1.5, end_s=2.5, parent=root)
            root.finish(2.0)

        with pytest.raises(TraceInvariantError, match="escapes"):
            validate_trace(_span_tree(build))

    def test_rejects_same_worker_sibling_overlap(self):
        def build(t):
            root = t.start_span("root", start_s=0.0, worker="w")
            t.record("a", start_s=0.0, end_s=1.2, parent=root)
            t.record("b", start_s=1.0, end_s=2.0, parent=root)
            root.finish(2.0)

        with pytest.raises(TraceInvariantError, match="overlap"):
            validate_trace(_span_tree(build))

    def test_allows_cross_worker_overlap(self):
        """Pipelined retrieval vs GPU: different workers may overlap."""

        def build(t):
            root = t.start_span("root", start_s=0.0, worker="timeline")
            t.record("gpu_work", start_s=0.0, end_s=1.5, parent=root, worker="gpu")
            t.record("cpu_work", start_s=0.0, end_s=1.8, parent=root, worker="cpu")
            root.finish(2.0)

        assert validate_trace(_span_tree(build)) == 3

    def test_touching_boundaries_are_not_overlap(self):
        def build(t):
            root = t.start_span("root", start_s=0.0, worker="w")
            t.record("a", start_s=0.0, end_s=1.0, parent=root)
            t.record("zero", start_s=1.0, end_s=1.0, parent=root)
            t.record("b", start_s=1.0, end_s=2.0, parent=root)
            root.finish(2.0)

        assert validate_trace(_span_tree(build)) == 4

    def test_eps_absorbs_float_noise(self):
        def build(t):
            root = t.start_span("root", start_s=0.0, worker="w")
            t.record("a", start_s=-1e-12, end_s=1.0, parent=root)
            root.finish(1.0)

        roots = _span_tree(build)
        with pytest.raises(TraceInvariantError):
            validate_trace(roots)
        assert validate_trace(roots, eps=1e-9) == 2


# ---------------------------------------------------------------------------
# Real traced retrieval (wall clock)
# ---------------------------------------------------------------------------


class TestTracedRetrieval:
    @pytest.fixture(scope="class")
    def traced_result(self, clustered, small_queries):
        tracer = Tracer(enabled=True)
        searcher = HermesSearcher(clustered, tracer=tracer)
        result = searcher.search(
            small_queries.embeddings, k=5, clusters_to_search=3
        )
        return result, tracer

    def test_trace_validates(self, traced_result):
        result, tracer = traced_result
        assert validate_trace(tracer.finished_roots()) > 0

    def test_result_carries_root_span(self, traced_result):
        result, _ = traced_result
        assert result.trace is not None
        assert result.trace.name == "retrieval"
        assert result.trace.finished

    def test_phase_children_in_order(self, traced_result):
        result, _ = traced_result
        names = [c.name for c in result.trace.children]
        assert names == ["route", "deep_search", "merge"]

    def test_phases_sum_to_at_most_total(self, traced_result):
        result, _ = traced_result
        total = result.trace.duration_s
        assert sum(c.duration_s for c in result.trace.children) <= total

    def test_shard_fanout_spans_cover_routed_shards(self, traced_result, clustered):
        result, _ = traced_result
        shard_spans = result.trace.find_all("shard_search")
        routed = set(np.unique(result.routing.clusters))
        assert {s.attrs["shard"] for s in shard_spans} == routed
        assert all(s.worker == f"shard{s.attrs['shard']}" for s in shard_spans)

    def test_threaded_fanout_also_validates(self, clustered, small_queries):
        """Parallel shard spans overlap in time but live on distinct
        workers, so the same-worker serialization invariant still holds."""
        tracer = Tracer(enabled=True)
        searcher = HermesSearcher(clustered, max_workers=4, tracer=tracer)
        result = searcher.search(small_queries.embeddings, clusters_to_search=3)
        assert validate_trace(tracer.finished_roots()) > 0
        assert result.trace is not None

    def test_opt_in_trace_flag(self, clustered, small_queries):
        """``search(trace=True)`` yields a validated local trace even with
        the process-wide tracer disabled."""
        searcher = HermesSearcher(clustered)
        result = searcher.search(small_queries.embeddings, trace=True)
        assert result.trace is not None
        assert validate_span_tree(result.trace) > 0

    def test_no_trace_by_default(self, clustered, small_queries):
        result = HermesSearcher(clustered).search(small_queries.embeddings)
        assert result.trace is None


# ---------------------------------------------------------------------------
# DES simulator: virtual-time spans reconstruct reported latency exactly
# ---------------------------------------------------------------------------


def _plan(n_nodes: int = 3, n_strides: int = 3) -> StagePlan:
    return StagePlan(
        encode_s=0.002,
        sample_seconds=np.array([0.001, 0.0015, 0.001][:n_nodes]),
        deep_seconds=np.array([0.011, 0.0, 0.023][:n_nodes]),
        first_prefill_s=0.031,
        later_prefill_s=0.0052,
        decode_stride_s=0.041,
        n_strides=n_strides,
    )


class TestSimulatorVirtualTime:
    def test_phase_children_tile_batch_latency_exactly(self):
        tracer = Tracer(enabled=True)
        sim = PipelineSimulator(_plan(), batch_size=16, tracer=tracer)
        report = sim.run(5)
        roots = tracer.finished_roots()
        assert len(roots) == len(report.batches)
        validate_trace(roots)
        for root, batch in zip(roots, report.batches):
            assert root.attrs["batch_id"] == batch.batch_id
            # exact reconstruction: no tolerance — children share boundaries
            assert root.duration_s == batch.latency_s
            assert sum(c.duration_s for c in root.children) == batch.latency_s

    def test_phase_order_per_stride(self):
        tracer = Tracer(enabled=True)
        sim = PipelineSimulator(_plan(n_strides=2), batch_size=4, tracer=tracer)
        sim.run(1)
        (root,) = tracer.finished_roots()
        assert [c.name for c in root.children] == [
            "encode",
            "sample", "deep_search", "prefill", "decode",
            "sample", "deep_search", "prefill", "decode",
        ]

    def test_node_busy_spans_nest_in_their_phase(self):
        tracer = Tracer(enabled=True)
        sim = PipelineSimulator(_plan(), batch_size=4, tracer=tracer)
        sim.run(2)
        roots = tracer.finished_roots()
        deep_phases = [s for r in roots for s in r.find_all("deep_search")]
        assert deep_phases
        for phase in deep_phases:
            # plan routes deep search to nodes 0 and 2 only
            assert sorted(c.attrs["node"] for c in phase.children) == [0, 2]
            for child in phase.children:
                assert child.worker == f"node{child.attrs['node']}"

    def test_queued_batches_still_account_exactly(self):
        """A closed burst makes batches queue behind the GPU and each
        other's nodes; queue waits are charged to phases, never lost."""
        tracer = Tracer(enabled=True)
        sim = PipelineSimulator(_plan(), batch_size=8, tracer=tracer)
        report = sim.run(8, arrival_interval_s=0.0)
        roots = tracer.finished_roots()
        validate_trace(roots)
        for root, batch in zip(roots, report.batches):
            assert sum(c.duration_s for c in root.children) == batch.latency_s

    def test_faulted_fleet_traces_validate(self):
        faults = FleetFaultSchedule(
            3,
            outages=[NodeOutage(node=0, start_s=0.0, end_s=0.05)],
            slowdowns=[NodeSlowdown(node=2, start_s=0.0, end_s=10.0, factor=3.0)],
        )
        tracer = Tracer(enabled=True)
        sim = PipelineSimulator(
            _plan(), batch_size=4, faults=faults, tracer=tracer
        )
        report = sim.run(4)
        roots = tracer.finished_roots()
        validate_trace(roots)
        for root, batch in zip(roots, report.batches):
            assert sum(c.duration_s for c in root.children) == batch.latency_s
            assert root.attrs["degraded"] == batch.degraded

    def test_untraced_simulator_emits_nothing(self):
        sim = PipelineSimulator(_plan(), batch_size=4)
        sim.run(2)
        assert sim.tracer is None


# ---------------------------------------------------------------------------
# Generation timeline (virtual clock, cross-worker overlap)
# ---------------------------------------------------------------------------


class TestGenerationTimeline:
    @pytest.mark.parametrize("pipelined", [False, True])
    @pytest.mark.parametrize("prefix_cached", [False, True])
    def test_timeline_validates_and_matches_e2e(self, pipelined, prefix_cached):
        tracer = Tracer(enabled=True)
        config = GenerationConfig(
            batch=8,
            output_tokens=64,
            stride=16,
            pipelined=pipelined,
            prefix_cached=prefix_cached,
        )
        result = simulate_generation(
            constant_retrieval(RetrievalCost(latency_s=0.05, energy_j=10.0)),
            InferenceModel(),
            config,
            tracer=tracer,
        )
        (root,) = tracer.finished_roots()
        validate_span_tree(root)
        assert root.duration_s == pytest.approx(result.e2e_s, abs=1e-9)
        assert root.total("retrieval") == pytest.approx(result.retrieval_s)
        assert root.total("prefill") == pytest.approx(result.prefill_s)
        assert root.total("decode") == pytest.approx(result.decode_s)

    @pytest.mark.parametrize("pipelined", [False, True])
    def test_timeline_telescopes_to_returned_e2e(self, pipelined):
        """`_emit_generation_trace` claims the root closes at ``e2e_s`` "up
        to floating-point association order": the reconstructed timeline must
        *telescope* — the last emitted span ends exactly where the request
        ends, and prefill hands off to decode with no gap inside each
        stride — for both the sequential and the pipelined schedules. (The
        gpu track may idle *between* strides: that is the sequential
        retrieval stall the pipeline exists to hide.)"""
        tracer = Tracer(enabled=True)
        config = GenerationConfig(
            batch=8, output_tokens=64, stride=16, pipelined=pipelined
        )
        result = simulate_generation(
            constant_retrieval(RetrievalCost(latency_s=0.05, energy_j=10.0)),
            InferenceModel(),
            config,
            tracer=tracer,
        )
        (root,) = tracer.finished_roots()
        last_end = max(s.end_s for s in root.walk() if s is not root)
        assert last_end == pytest.approx(result.e2e_s, abs=1e-9)
        assert root.end_s == pytest.approx(result.e2e_s, abs=1e-9)
        prefills = {s.attrs["stride"]: s for s in root.find_all("prefill")}
        decodes = {s.attrs["stride"]: s for s in root.find_all("decode")}
        assert set(prefills) == set(decodes)
        for stride, prefill in prefills.items():
            assert decodes[stride].start_s == pytest.approx(
                prefill.end_s, abs=1e-9
            )

    def test_pipelined_overlap_visible_cross_worker(self):
        """Under pipelining, stride i+1's retrieval (cpu) starts exactly
        with stride i's prefill (gpu) — TeleRAG-style overlap analysis."""
        tracer = Tracer(enabled=True)
        config = GenerationConfig(
            batch=8, output_tokens=48, stride=16, pipelined=True
        )
        simulate_generation(
            constant_retrieval(RetrievalCost(latency_s=0.5, energy_j=10.0)),
            InferenceModel(),
            config,
            tracer=tracer,
        )
        (root,) = tracer.finished_roots()
        retrievals = {s.attrs["stride"]: s for s in root.find_all("retrieval")}
        prefills = {s.attrs["stride"]: s for s in root.find_all("prefill")}
        for i in range(config.n_strides - 1):
            assert retrievals[i + 1].start_s == prefills[i].start_s
        assert all(s.worker == "cpu" for s in retrievals.values())
        assert all(s.worker == "gpu" for s in prefills.values())

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(enabled=False)
        config = GenerationConfig(batch=8, output_tokens=32, stride=16)
        simulate_generation(
            constant_retrieval(RetrievalCost(latency_s=0.05, energy_j=10.0)),
            InferenceModel(),
            config,
            tracer=tracer,
        )
        assert tracer.finished_roots() == []
