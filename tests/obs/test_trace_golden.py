"""Golden-trace regression: the span taxonomy is pinned, durations are not.

A seeded ``hermes-repro trace`` run must produce the same *skeleton* —
span names and nesting, with every timestamp normalized out — as the
checked-in JSON next to this test. Durations vary run to run (and the
parallel build / shard fan-out attaches children in completion order), so
skeletons are canonicalized by recursively sorting children before
comparison: structure is load-bearing, scheduling order is not.

To regenerate after an intentional instrumentation change:

    PYTHONPATH=src python tests/obs/test_trace_golden.py
"""

import json
from pathlib import Path

import pytest

from repro.experiments import tracing
from repro.obs.trace import trace_skeleton

pytestmark = pytest.mark.obs

GOLDEN_DIR = Path(__file__).parent / "golden"
#: generation runs on a virtual clock (fully deterministic ordering);
#: retrieval exercises the threaded build + shard fan-out (completion-order
#: nondeterminism is what the canonicalization absorbs).
GOLDEN_EXPERIMENTS = ("retrieval", "generation")


def canonicalize(skeleton):
    """Recursively sort children so thread completion order can't differ."""

    def canon(node):
        out = {"name": node["name"]}
        if node.get("children"):
            out["children"] = sorted(
                (canon(c) for c in node["children"]),
                key=lambda n: json.dumps(n, sort_keys=True),
            )
        return out

    return sorted(
        (canon(r) for r in skeleton), key=lambda n: json.dumps(n, sort_keys=True)
    )


def current_skeleton(experiment):
    run = tracing.run(experiment, seed=0)
    return canonicalize(trace_skeleton(run.roots))


@pytest.mark.parametrize("experiment", GOLDEN_EXPERIMENTS)
def test_skeleton_matches_golden(experiment):
    golden_path = GOLDEN_DIR / f"{experiment}_skeleton.json"
    golden = json.loads(golden_path.read_text())
    actual = current_skeleton(experiment)
    assert actual == golden, (
        f"trace skeleton for {experiment!r} drifted from {golden_path}; "
        "if the instrumentation change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/obs/test_trace_golden.py`"
    )


def test_golden_has_no_timing_fields():
    # the checked-in artifact must stay duration-free, or it could never
    # match a live run
    for experiment in GOLDEN_EXPERIMENTS:
        text = (GOLDEN_DIR / f"{experiment}_skeleton.json").read_text()
        for field in ("start_s", "end_s", "duration", "ts", "dur"):
            assert f'"{field}"' not in text


def test_seeded_runs_are_reproducible():
    # same seed, two fresh runs: canonical skeletons must agree even though
    # thread scheduling differs
    assert current_skeleton("retrieval") == current_skeleton("retrieval")


def _regenerate():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for experiment in GOLDEN_EXPERIMENTS:
        path = GOLDEN_DIR / f"{experiment}_skeleton.json"
        path.write_text(json.dumps(current_skeleton(experiment), indent=2) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    _regenerate()
