"""Tests for the RAPL-style energy meter."""

import pytest

from repro.hardware.power import EnergyInterval, EnergyMeter


class TestInterval:
    def test_joules(self):
        assert EnergyInterval("cpu", 100.0, 2.0).joules == 200.0

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            EnergyInterval("cpu", -1.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EnergyInterval("cpu", 1.0, -1.0)


class TestMeter:
    def test_total(self):
        meter = EnergyMeter()
        meter.record("cpu", 100.0, 1.0)
        meter.record("gpu", 200.0, 0.5)
        assert meter.total_joules() == 200.0

    def test_by_device(self):
        meter = EnergyMeter()
        meter.record("cpu", 100.0, 1.0)
        meter.record("cpu", 100.0, 1.0)
        meter.record("gpu", 50.0, 1.0)
        by = meter.joules_by_device()
        assert by == {"cpu": 200.0, "gpu": 50.0}

    def test_by_label(self):
        meter = EnergyMeter()
        meter.record("cpu", 100.0, 1.0, label="retrieval")
        meter.record("gpu", 100.0, 1.0, label="prefill")
        meter.record("gpu", 100.0, 2.0, label="prefill")
        assert meter.joules_by_label()["prefill"] == 300.0

    def test_merge(self):
        a, b = EnergyMeter(), EnergyMeter()
        a.record("cpu", 1.0, 1.0)
        b.record("cpu", 2.0, 1.0)
        a.merge(b)
        assert a.total_joules() == 3.0

    def test_reset(self):
        meter = EnergyMeter()
        meter.record("cpu", 1.0, 1.0)
        meter.reset()
        assert meter.total_joules() == 0.0
