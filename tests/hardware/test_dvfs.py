"""Tests for DVFS mechanics."""

import pytest

from repro.hardware.cpu import XEON_GOLD_6448Y
from repro.hardware.dvfs import (
    energy_optimal_frequency,
    frequency_for_target,
    operating_point,
    scaled_energy,
)


class TestFrequencyForTarget:
    def test_no_slack_needs_max_frequency(self):
        f = frequency_for_target(XEON_GOLD_6448Y, busy_time_at_max_s=1.0, target_latency_s=1.0)
        assert f == pytest.approx(XEON_GOLD_6448Y.max_freq_ghz)

    def test_double_slack_halves_frequency(self):
        f = frequency_for_target(XEON_GOLD_6448Y, 1.0, 2.0)
        assert f == pytest.approx(XEON_GOLD_6448Y.max_freq_ghz / 2)

    def test_clamped_to_min(self):
        f = frequency_for_target(XEON_GOLD_6448Y, 0.01, 100.0)
        assert f == XEON_GOLD_6448Y.min_freq_ghz

    def test_impossible_target_clamped_to_max(self):
        f = frequency_for_target(XEON_GOLD_6448Y, 10.0, 1.0)
        assert f == XEON_GOLD_6448Y.max_freq_ghz

    def test_zero_work_uses_min(self):
        assert (
            frequency_for_target(XEON_GOLD_6448Y, 0.0, 1.0)
            == XEON_GOLD_6448Y.min_freq_ghz
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            frequency_for_target(XEON_GOLD_6448Y, -1.0, 1.0)
        with pytest.raises(ValueError):
            frequency_for_target(XEON_GOLD_6448Y, 1.0, 0.0)


class TestOperatingPoint:
    def test_latency_inverse_in_frequency(self):
        p = XEON_GOLD_6448Y
        full = operating_point(p, 1.0, p.max_freq_ghz)
        half = operating_point(p, 1.0, p.max_freq_ghz / 2)
        assert half.latency_s == pytest.approx(2 * full.latency_s)

    def test_energy_decreases_at_lower_frequency(self):
        p = XEON_GOLD_6448Y
        full = operating_point(p, 1.0, p.max_freq_ghz)
        half = operating_point(p, 1.0, p.max_freq_ghz / 2)
        assert half.energy_j < full.energy_j


class TestScaledEnergy:
    def test_meets_target(self):
        point = scaled_energy(XEON_GOLD_6448Y, 1.0, 3.0)
        assert point.latency_s <= 3.0 + 1e-9

    def test_saves_vs_max_frequency(self):
        p = XEON_GOLD_6448Y
        at_max = operating_point(p, 1.0, p.max_freq_ghz)
        scaled = scaled_energy(p, 1.0, 2.0)
        assert scaled.energy_j < at_max.energy_j

    def test_more_slack_never_costs_energy(self):
        # Energy is non-increasing in slack: it falls until the energy-optimal
        # frequency, then plateaus (slowing further would waste idle energy).
        p = XEON_GOLD_6448Y
        energies = [
            scaled_energy(p, 1.0, t).energy_j for t in (1.0, 1.5, 2.0, 2.5, 5.0)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(energies, energies[1:]))

    def test_never_scales_below_energy_optimal_frequency(self):
        p = XEON_GOLD_6448Y
        point = scaled_energy(p, 0.1, 100.0)
        assert point.freq_ghz == pytest.approx(energy_optimal_frequency(p))

    def test_energy_optimal_frequency_within_range(self):
        p = XEON_GOLD_6448Y
        f = energy_optimal_frequency(p)
        assert p.min_freq_ghz <= f <= p.max_freq_ghz

    def test_optimal_frequency_is_a_minimum(self):
        # Perturbing around f* costs energy on both sides.
        p = XEON_GOLD_6448Y
        f = energy_optimal_frequency(p)
        if p.min_freq_ghz < f < p.max_freq_ghz:
            at = operating_point(p, 1.0, f).energy_j
            above = operating_point(p, 1.0, f * 1.1).energy_j
            below = operating_point(p, 1.0, f * 0.9).energy_j
            assert at <= above and at <= below
