"""Tests for GPU platform models."""

import pytest

from repro.hardware.gpu import (
    A6000_ADA,
    L4,
    GPUPlatform,
    get_gpu,
    tensor_parallel_speedup,
)


class TestPlatforms:
    def test_paper_quoted_envelopes(self):
        # §6: "91 TFLOPS at 300 watts vs. 31 TFLOPS at 140 watts".
        assert A6000_ADA.peak_tflops == 91.0
        assert A6000_ADA.tdp_w == 300.0
        assert L4.peak_tflops == 31.0
        assert L4.tdp_w == 140.0

    def test_lookup(self):
        assert get_gpu("l4") is L4

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_gpu("h100")

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUPlatform("x", peak_tflops=0, mem_bandwidth_gbs=1, tdp_w=10,
                        idle_w=1, mem_gb=1)


class TestMemoryFit:
    def test_gemma2_fits_one_a6000(self):
        assert A6000_ADA.gpus_required(26.0) == 1

    def test_gemma2_needs_two_l4(self):
        # Fig. 17: "the Gemma 2 model requires 2 L4 GPUs".
        assert L4.gpus_required(26.0) == 2

    def test_opt30b_needs_two_a6000(self):
        # Fig. 17: "the OPT model requires two A6000 Ada GPUs".
        assert A6000_ADA.gpus_required(70.0) == 2

    def test_fits_predicate(self):
        assert A6000_ADA.fits(40.0)
        assert not L4.fits(40.0)


class TestTensorParallel:
    def test_single_gpu_no_overhead(self):
        assert tensor_parallel_speedup(1) == 1.0

    def test_two_gpus_sublinear(self):
        s = tensor_parallel_speedup(2)
        assert 1.0 < s < 2.0

    def test_diminishing_returns(self):
        # Marginal speedup per added GPU shrinks (the paper's energy point).
        gains = [
            tensor_parallel_speedup(n + 1) - tensor_parallel_speedup(n)
            for n in range(1, 5)
        ]
        assert gains == sorted(gains, reverse=True)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tensor_parallel_speedup(0)
