"""Tests for CPU platform models."""

import pytest

from repro.hardware.cpu import (
    CPU_PLATFORMS,
    NEOVERSE_N1,
    XEON_GOLD_6448Y,
    XEON_PLATINUM_8380,
    CPUPlatform,
    get_cpu,
)


class TestRegistry:
    def test_four_platforms(self):
        assert len(CPU_PLATFORMS) == 4

    def test_lookup(self):
        assert get_cpu("xeon_gold_6448y") is XEON_GOLD_6448Y

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown CPU"):
            get_cpu("epyc")


class TestPlatformInvariants:
    def test_gold_matches_paper_setup(self):
        # The paper's main platform: 32 cores at 2.3 GHz.
        assert XEON_GOLD_6448Y.cores == 32
        assert XEON_GOLD_6448Y.max_freq_ghz == pytest.approx(2.3)

    def test_platinum_fastest_per_core(self):
        others = [p for p in CPU_PLATFORMS.values() if p is not XEON_PLATINUM_8380]
        assert all(XEON_PLATINUM_8380.relative_speed > p.relative_speed for p in others)

    def test_arm_has_most_cores(self):
        assert NEOVERSE_N1.cores == max(p.cores for p in CPU_PLATFORMS.values())

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            CPUPlatform("x", cores=0, min_freq_ghz=1, max_freq_ghz=2,
                        active_power_w=100, idle_power_w=10)
        with pytest.raises(ValueError):
            CPUPlatform("x", cores=4, min_freq_ghz=3, max_freq_ghz=2,
                        active_power_w=100, idle_power_w=10)
        with pytest.raises(ValueError):
            CPUPlatform("x", cores=4, min_freq_ghz=1, max_freq_ghz=2,
                        active_power_w=10, idle_power_w=100)


class TestPowerModel:
    def test_max_freq_full_util_is_active_power(self):
        p = XEON_GOLD_6448Y
        assert p.power_at(p.max_freq_ghz) == pytest.approx(p.active_power_w)

    def test_power_cubic_in_frequency(self):
        p = XEON_GOLD_6448Y
        half = p.power_at(p.max_freq_ghz / 2)
        dyn = p.active_power_w - p.idle_power_w
        assert half == pytest.approx(p.idle_power_w + dyn / 8)

    def test_idle_at_zero_utilization(self):
        p = XEON_GOLD_6448Y
        assert p.power_at(p.max_freq_ghz, utilization=0.0) == p.idle_power_w

    def test_frequency_clamped_to_range(self):
        p = XEON_GOLD_6448Y
        assert p.power_at(100.0) == pytest.approx(p.active_power_w)
        assert p.power_at(0.01) == pytest.approx(
            p.power_at(p.min_freq_ghz)
        )

    def test_utilization_validated(self):
        with pytest.raises(ValueError):
            XEON_GOLD_6448Y.power_at(2.0, utilization=1.5)


class TestSlowdown:
    def test_no_slowdown_at_max(self):
        assert XEON_GOLD_6448Y.slowdown_at(XEON_GOLD_6448Y.max_freq_ghz) == 1.0

    def test_half_freq_doubles_latency(self):
        p = XEON_GOLD_6448Y
        assert p.slowdown_at(p.max_freq_ghz / 2) == pytest.approx(2.0)

    def test_energy_win_despite_longer_runtime(self):
        # The DVFS premise: E(f) = P(f)/f decreases as f drops (cubic power).
        p = XEON_GOLD_6448Y
        e_fast = p.power_at(p.max_freq_ghz) * 1.0
        e_slow = p.power_at(p.max_freq_ghz / 2) * 2.0
        assert e_slow < e_fast
