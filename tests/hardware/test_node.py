"""Tests for retrieval nodes and fleets."""

import pytest

from repro.hardware.cpu import NEOVERSE_N1
from repro.hardware.node import NodeCluster, RetrievalNode


class TestNode:
    def test_host_within_memory(self):
        node = RetrievalNode(node_id=0, memory_gb=100)
        node.host(shard_tokens=1e9, shard_bytes=50e9)
        assert node.shard_fits
        assert node.shard_tokens == 1e9

    def test_host_exceeding_memory_rejected(self):
        node = RetrievalNode(node_id=0, memory_gb=10)
        with pytest.raises(ValueError, match="exceeds"):
            node.host(shard_tokens=1e9, shard_bytes=50e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetrievalNode(node_id=0, memory_gb=0)
        with pytest.raises(ValueError):
            RetrievalNode(node_id=0, shard_tokens=-1)


class TestCluster:
    def test_homogeneous(self):
        fleet = NodeCluster.homogeneous(5)
        assert len(fleet) == 5
        assert [n.node_id for n in fleet] == list(range(5))

    def test_custom_cpu(self):
        fleet = NodeCluster.homogeneous(2, cpu=NEOVERSE_N1)
        assert all(n.cpu is NEOVERSE_N1 for n in fleet)

    def test_host_shards(self):
        fleet = NodeCluster.homogeneous(3)
        fleet.host_shards([1e9, 2e9, 3e9], [1e9, 2e9, 3e9])
        assert fleet.total_tokens() == 6e9
        assert fleet.total_bytes() == 6e9
        assert fleet[1].shard_tokens == 2e9

    def test_host_shards_length_mismatch(self):
        fleet = NodeCluster.homogeneous(3)
        with pytest.raises(ValueError, match="expected 3"):
            fleet.host_shards([1e9], [1e9])

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            NodeCluster.homogeneous(0)
