"""Tests for the real-search experiments (Table 1, Figs. 11-13)."""

import pytest

from repro.experiments import fig11, fig12, fig13, table1


@pytest.fixture(scope="module")
def table1_rows():
    # A reduced but structurally identical Table 1 run.
    return table1.run(n_docs=800, n_queries=24, dim=768)


class TestTable1:
    def test_all_schemes_present(self, table1_rows):
        assert [r.scheme for r in table1_rows] == list(table1.SCHEMES)

    def test_code_sizes_match_paper_exactly(self, table1_rows):
        for row in table1_rows:
            assert row.vector_bytes == row.paper_vector_bytes

    def test_sq8_matches_flat(self, table1_rows):
        by = {r.scheme: r for r in table1_rows}
        assert by["flat"].recall - by["sq8"].recall <= 0.05

    def test_aggressive_quantization_loses_recall(self, table1_rows):
        by = {r.scheme: r for r in table1_rows}
        assert by["pq256"].recall < by["flat"].recall
        assert by["sq4"].recall < by["sq8"].recall

    def test_render_mentions_all_schemes(self, table1_rows):
        text = table1.render(table1_rows)
        for scheme in table1.SCHEMES:
            assert scheme.upper() in text


@pytest.fixture(scope="module")
def fig11_sweep():
    return fig11.run(clusters=(1, 2, 3, 5, 10))


class TestFig11:
    def test_hermes_iso_accuracy_by_three(self, fig11_sweep):
        assert fig11_sweep.hermes_iso_accuracy_clusters() <= 3

    def test_hermes_beats_split_at_small_fanout(self, fig11_sweep):
        for h, s in zip(fig11_sweep.hermes[:3], fig11_sweep.split[:3]):
            assert h > s

    def test_hermes_at_least_centroid(self, fig11_sweep):
        idx = fig11_sweep.clusters.index(3)
        assert fig11_sweep.hermes[idx] >= fig11_sweep.centroid[idx] - 0.01

    def test_all_converge_at_full_fanout(self, fig11_sweep):
        assert fig11_sweep.hermes[-1] == pytest.approx(fig11_sweep.split[-1], abs=0.02)

    def test_figure_rendering(self, fig11_sweep):
        fig = fig11.to_figure(fig11_sweep)
        assert {s.name for s in fig.series} == {
            "Monolithic", "Split", "Centroid-Based", "Hermes"
        }


class TestFig12:
    @pytest.fixture(scope="class")
    def sweeps(self):
        return {
            "small": fig12.small_nprobe_sweep(
                nprobes=(1, 8), clusters=(1, 3, 10)
            ),
            "large": fig12.large_nprobe_sweep(
                nprobes=(16, 128), clusters=(1, 3, 10)
            ),
        }

    def test_deeper_sampling_not_worse(self, sweeps):
        at = lambda pts, np_, m: next(
            p for p in pts if p.sample_nprobe == np_ and p.clusters_searched == m
        )
        small = sweeps["small"]
        assert at(small, 8, 3).ndcg >= at(small, 1, 3).ndcg - 0.02

    def test_deeper_deep_search_not_worse(self, sweeps):
        at = lambda pts, np_, m: next(
            p for p in pts if p.deep_nprobe == np_ and p.clusters_searched == m
        )
        large = sweeps["large"]
        assert at(large, 128, 3).ndcg >= at(large, 16, 3).ndcg - 0.02

    def test_large_nprobe_latency_dominates(self, sweeps):
        # Fig. 12's cost asymmetry: the deep knob is much more expensive.
        small_delta = (
            sweeps["small"][-1].latency_s - sweeps["small"][0].latency_s
        )
        large_delta = (
            sweeps["large"][-1].latency_s - sweeps["large"][0].latency_s
        )
        assert abs(large_delta) > abs(small_delta)

    def test_optimal_config_prefers_accuracy(self, sweeps):
        best = fig12.optimal_config(sweeps["small"] + sweeps["large"])
        all_points = sweeps["small"] + sweeps["large"]
        assert best.ndcg >= max(p.ndcg for p in all_points) - 0.01

    def test_optimal_config_empty_rejected(self):
        with pytest.raises(ValueError):
            fig12.optimal_config([])


class TestFig13:
    @pytest.fixture(scope="class")
    def report(self):
        return fig13.run()

    def test_size_imbalance_near_2x(self, report):
        assert 1.2 < report.size_imbalance < 3.0

    def test_access_imbalance_skewed(self, report):
        assert report.access_imbalance > 1.5

    def test_counts_cover_all_clusters(self, report):
        assert len(report.cluster_sizes) == 10
        assert (report.access_counts > 0).all()
