"""Tests for the fault-sweep experiment (graceful degradation curve)."""

import json

import pytest

from repro.experiments import fig_faults


@pytest.fixture(scope="module")
def sweep():
    return fig_faults.run((0, 1), n_queries=24)


class TestFaultSweep:
    def test_healthy_point_is_clean(self, sweep):
        healthy = sweep[0]
        assert healthy.killed == 0
        assert healthy.killed_shards == ()
        assert healthy.hermes.ndcg > 0.9
        assert healthy.split.ndcg > 0.9
        assert healthy.hermes.affected_frac == 0.0
        assert healthy.split.affected_frac == 0.0

    def test_semantic_clustering_localises_blast_radius(self, sweep):
        """The availability claim: with one node dead, Hermes degrades only
        the dead topic's queries; the naive split degrades nearly all."""
        degraded = sweep[1]
        assert degraded.killed == 1
        assert len(degraded.killed_shards) == 1
        assert degraded.hermes.affected_frac < degraded.split.affected_frac
        # NB: mean NDCG is NOT asserted to favour Hermes — losing a topic
        # craters its queries, while the split spreads a mild loss over
        # everyone. Localisation (affected_frac) is the availability claim.

    def test_degraded_ndcg_drops_but_survives(self, sweep):
        healthy, degraded = sweep
        assert degraded.hermes.ndcg <= healthy.hermes.ndcg
        assert degraded.hermes.ndcg > 0.5  # most topics still served

    def test_latencies_positive_and_ordered(self, sweep):
        for point in sweep:
            for strat in (point.hermes, point.split):
                assert 0 < strat.p50_ms <= strat.p99_ms

    def test_same_shards_killed_for_both_strategies(self, sweep):
        # comparability: the sweep reports one killed-shard set per point
        assert all(isinstance(s, int) for s in sweep[1].killed_shards)

    def test_killing_everything_rejected(self):
        with pytest.raises(ValueError, match="still serve"):
            fig_faults.run((10,), n_queries=4)

    def test_to_figure_series(self, sweep):
        fig = fig_faults.to_figure(sweep)
        assert fig.figure_id == "fig_faults"
        labels = [s.name for s in fig.series]
        assert "Hermes NDCG@10" in labels
        assert "Split affected frac" in labels
        assert fig.notes  # blast-radius note present

    def test_artifact_round_trips(self, sweep, tmp_path):
        path = tmp_path / "faults.json"
        fig_faults.write_artifact(sweep, str(path))
        payload = json.loads(path.read_text())
        assert payload["figure"] == "fig_faults"
        assert payload["k"] == fig_faults.K_FAULTS
        assert payload["policy"]["max_attempts"] == 2
        point = payload["points"][1]
        assert set(point) == {"killed", "killed_shards", "hermes", "split"}
        assert set(point["hermes"]) == {
            "ndcg", "affected_frac", "p50_ms", "p99_ms",
        }
