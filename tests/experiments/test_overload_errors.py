"""Regression: overload sweep error accounting.

The open-loop load sweep must count *only* genuine overload outcomes
(deadline sheds, admission rejections) as "shed"; an unexpected crash in the
serving stack has to propagate instead of silently corrupting the goodput
numbers (the old bare ``except Exception`` absorbed everything).
"""

import numpy as np
import pytest

from repro.core.clustering import cluster_datastore
from repro.core.config import HermesConfig
from repro.core.errors import DeadlineExceededError
from repro.core.hierarchical import HermesSearcher
from repro.datastore.embeddings import make_corpus
from repro.experiments.overload import _run_load_point
from repro.serving.frontend import ServingFrontend


@pytest.fixture(scope="module")
def small_stack():
    corpus = make_corpus(400, n_topics=4, dim=16, seed=0)
    datastore = cluster_datastore(
        corpus.embeddings,
        HermesConfig(n_clusters=4, clusters_to_search=2, nlist=8),
    )
    searcher = HermesSearcher(datastore)
    queries, _ = corpus.topic_model.sample_documents(8)
    queries = np.asarray(queries, dtype=np.float32)
    truth = np.tile(np.arange(10, dtype=np.int64), (len(queries), 1))
    return searcher, queries, truth


def _point(searcher, queries, truth):
    return _run_load_point(
        searcher,
        queries,
        truth,
        load=1.0,
        offered_qps=5000.0,
        deadline_s=0.05,
        k=10,
        max_batch=8,
        max_wait_s=0.0,
        admission=None,
        seed=0,
    )


class TestUnexpectedErrorsPropagate:
    def test_crash_in_frontend_propagates(self, small_stack, monkeypatch):
        searcher, queries, truth = small_stack

        def boom(self, *args, **kwargs):
            raise RuntimeError("worker crashed mid-batch")

        monkeypatch.setattr(ServingFrontend, "search", boom)
        with pytest.raises(RuntimeError, match="worker crashed"):
            _point(searcher, queries, truth)

    def test_deadline_shed_still_counted(self, small_stack, monkeypatch):
        searcher, queries, truth = small_stack

        def shed(self, *args, **kwargs):
            raise DeadlineExceededError(0.001, stage="queue")

        monkeypatch.setattr(ServingFrontend, "search", shed)
        point = _point(searcher, queries, truth)
        assert point.shed == len(queries)
        assert point.completed == 0
        assert point.goodput_qps == 0.0

    def test_healthy_run_sheds_nothing(self, small_stack):
        searcher, queries, truth = small_stack
        point = _point(searcher, queries, truth)
        assert point.shed == 0
        assert point.completed == len(queries)
