"""Tests for the modelled scale experiments (Figs. 4-10, 14, 16-21)."""

import pytest

from repro.experiments import (
    common,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig10,
    fig14,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
)


class TestCommonHelpers:
    def test_fleet_shards_sum_to_total(self):
        fleet = common.build_fleet(100e9)
        assert fleet.total_tokens == pytest.approx(100e9)
        assert fleet.n_clusters == 10

    def test_fleet_size_imbalance(self):
        fleet = common.build_fleet(100e9)
        assert max(fleet.shard_tokens) / min(fleet.shard_tokens) == pytest.approx(
            2.0, rel=0.01
        )

    def test_strategy_set_complete(self):
        from repro.llm.generation import GenerationConfig

        outcomes = common.compare_strategies(10e9, GenerationConfig())
        assert set(outcomes) == {
            "baseline", "ragcache", "piperag", "hermes", "hermes_combined"
        }


class TestFig04:
    def test_paper_ratios(self):
        comp = fig04.at_scale(128)
        assert comp.latency_advantage > 2.4
        assert comp.memory_overhead == pytest.approx(2.3, abs=0.1)

    def test_in_vivo_tradeoff(self):
        comp = fig04.in_vivo(n_docs=800, n_queries=16)
        # Matched recall, HNSW pays the memory.
        assert comp.memory_overhead > 1.0
        assert comp.hnsw_recall > 0.7 and comp.ivf_recall > 0.7


class TestFig05:
    def test_perplexity_panel_series(self):
        fig = fig05.perplexity_panel()
        assert len(fig.series) == 3
        for s in fig.series:
            assert all(b >= a for a, b in zip(s.y, s.y[1:]))  # PPL grows with stride

    def test_retrieval_latency_inverse_in_stride(self):
        fig = fig05.retrieval_latency_panel()
        for s in fig.series:
            assert all(b < a for a, b in zip(s.y, s.y[1:]))

    def test_stride_cost_ratio_near_paper(self):
        # Paper: stride 4 vs 64 at 100B costs ~12.12x end to end.
        ratio = fig05.e2e_stride_cost_ratio()
        assert 8 < ratio < 16


class TestFig06:
    def test_e2e_matches_paper_within_3pct(self):
        for tokens, expected in fig06.PAPER_E2E.items():
            point = fig06.measure(tokens)
            assert point.e2e_s == pytest.approx(expected, rel=0.03)

    def test_ttft_retrieval_share_matches_paper(self):
        for tokens, expected in fig06.PAPER_TTFT_RETRIEVAL_SHARE.items():
            point = fig06.measure(tokens)
            assert point.retrieval_share_of_ttft == pytest.approx(expected, abs=0.02)

    def test_latency_monotone_in_size(self):
        points = fig06.run()
        e2e = [p.e2e_s for p in points]
        assert e2e == sorted(e2e)


class TestFig07:
    def test_linear_scaling_decades(self):
        points = fig07.run()
        for a, b in zip(points, points[1:]):
            assert b.throughput_qps == pytest.approx(a.throughput_qps / 10, rel=0.05)
            assert b.energy_per_query_j == pytest.approx(
                a.energy_per_query_j * 10, rel=0.05
            )
            assert b.memory_gb == pytest.approx(a.memory_gb * 10, rel=0.05)

    def test_paper_anchor_100b(self):
        point = fig07.measure(100e9)
        assert point.throughput_qps == pytest.approx(5.69, rel=0.05)

    def test_gpu_contrast(self):
        contrast = fig07.gpu_contrast()
        assert contrast["gpu_prefill_qps"] == pytest.approx(132, rel=0.02)
        assert contrast["gpu_prefill_j_per_query"] == pytest.approx(2.2, rel=0.1)


class TestFig08:
    def test_prior_work_decays_at_scale(self):
        points = [fig08.measure(s) for s in (1e9, 1e12)]
        assert points[0].ragcache_speedup > points[1].ragcache_speedup
        assert points[1].piperag_speedup < 1.1  # nearly useless at 1T

    def test_piperag_peaks_at_crossover(self):
        cross = fig08.crossover_size()
        below = fig08.measure(cross / 100)
        at = fig08.measure(cross)
        above = fig08.measure(cross * 100)
        assert at.piperag_speedup > below.piperag_speedup
        assert at.piperag_speedup > above.piperag_speedup

    def test_crossover_near_13b_tokens(self):
        # With the calibrated models the retrieval/inference crossover sits
        # at ~1e10 tokens (the basis for the paper's 10B cluster sizing).
        assert 5e9 < fig08.crossover_size() < 5e10


class TestFig10:
    def test_pipeline_gap_sign_flips(self):
        points = fig10.run()
        assert points[0].hidden            # tiny clusters hide easily
        assert not points[-1].hidden       # 100B clusters do not

    def test_recommended_clusters_for_100b(self):
        # The paper splits 100B into ~10 clusters.
        n = fig10.recommended_clusters(100e9)
        assert 5 <= n <= 15


class TestFig14:
    @pytest.fixture(scope="class")
    def size_panel(self):
        return fig14.sweep_datastore((1e9, 1e12))

    def test_hermes_combined_dominates(self, size_panel):
        for point in size_panel:
            latencies = point.normalized_latency()
            assert latencies["hermes_combined"] <= min(
                latencies["baseline"], latencies["ragcache"], latencies["piperag"]
            )

    def test_gains_grow_with_datastore(self, size_panel):
        assert size_panel[1].hermes_speedup() > size_panel[0].hermes_speedup()

    def test_1t_headline_numbers(self, size_panel):
        at_1t = size_panel[1]
        # Paper: up to 9.33x latency and 2.10x energy at the trillion scale.
        assert at_1t.hermes_speedup() > 8.0
        assert at_1t.hermes_energy_saving() > 1.8

    def test_stride_sweep_gains_grow_with_frequency(self):
        points = fig14.sweep_stride((4, 64))
        assert points[0].hermes_speedup() > points[1].hermes_speedup()

    def test_render(self, size_panel):
        text = fig14.render(size_panel)
        assert "hermes_combined" in text


class TestFig16:
    @pytest.fixture(scope="class")
    def points(self):
        return fig16.run()

    def test_ttft_speedup_grows_with_scale(self, points):
        speedups = [p.hermes_ttft_speedup() for p in points]
        assert speedups == sorted(speedups)

    def test_1t_near_paper_9x(self, points):
        assert points[-1].hermes_ttft_speedup() == pytest.approx(9.1, rel=0.25)

    def test_prior_work_cannot_cut_ttft(self, points):
        assert not any(p.pipelining_helps_ttft() for p in points)


class TestFig17:
    @pytest.fixture(scope="class")
    def results(self):
        return fig17.run()

    def test_speedup_decreases_with_model_size(self, results):
        speedups = [p.hermes_speedup() for p in results["models"]]
        assert speedups == sorted(speedups, reverse=True)

    def test_all_models_still_gain(self, results):
        assert all(p.hermes_speedup() > 1.5 for p in results["models"])

    def test_gpu_counts_match_paper(self, results):
        by_label = {p.label: p for p in results["models"]}
        assert by_label["OPT (30B)"].n_gpus == 2
        hw = {p.label: p for p in results["hardware"]}
        assert hw["L4"].n_gpus == 2
        assert hw["A6000"].n_gpus == 1

    def test_l4_gains_persist(self, results):
        hw = {p.label: p for p in results["hardware"]}
        assert hw["L4"].hermes_speedup() > 1.5


class TestFig18:
    @pytest.fixture(scope="class")
    def points(self):
        return fig18.run()

    def test_throughput_decreases_with_fanout(self, points):
        tput = [p.throughput_qps for p in points]
        assert all(b <= a + 1e-9 for a, b in zip(tput, tput[1:]))

    def test_energy_increases_with_fanout(self, points):
        energy = [p.energy_per_batch_j for p in points]
        assert all(b >= a - 1e-9 for a, b in zip(energy, energy[1:]))

    def test_paper_headline_ratios(self, points):
        ratios = fig18.hermes_vs_naive(points)
        assert ratios["throughput_gain"] == pytest.approx(1.81, rel=0.25)
        assert ratios["energy_saving"] == pytest.approx(1.77, rel=0.25)


class TestFig19:
    def test_inference_grid_monotone_in_batch(self):
        cells = fig19.inference_latency_grid(batches=(32, 128))
        by_shape = {}
        for c in cells:
            by_shape.setdefault((c.input_tokens, c.output_tokens), []).append(c)
        for group in by_shape.values():
            ordered = sorted(group, key=lambda c: c.batch)
            assert ordered[0].latency_s <= ordered[-1].latency_s

    def test_optimal_cluster_grows_with_input(self):
        cells = fig19.optimal_cluster_sizes()
        sizes = [c.optimal_cluster_tokens for c in cells]
        assert sizes == sorted(sizes)
        # Tens-of-billions scale, as in the paper's 34B-114B example.
        assert sizes[0] > 1e9
        assert sizes[-1] < 1e12


class TestFig20:
    @pytest.fixture(scope="class")
    def points(self):
        return fig20.run(clusters=(1, 3, 10))

    def test_platinum_best(self, points):
        assert "Platinum" in fig20.best_platform(points)

    def test_arm_large_batch_tput_beats_small_batch(self, points):
        arm32 = [p for p in points if p.label.endswith("(BS=32)")]
        arm128 = [p for p in points if p.label.endswith("(BS=128)")]
        at3 = lambda pts: next(p for p in pts if p.clusters_searched == 3)
        assert at3(arm128).throughput_qps > at3(arm32).throughput_qps

    def test_inference_line_positive(self):
        assert fig20.inference_latency_line() > 0


class TestFig21:
    @pytest.fixture(scope="class")
    def points(self):
        return fig21.run()

    def test_savings_near_paper_averages(self, points):
        avg = fig21.average_savings(points)
        assert avg["baseline"] == pytest.approx(0.1224, abs=0.05)
        assert avg["enhanced"] == pytest.approx(0.2044, abs=0.06)

    def test_enhanced_at_least_baseline_everywhere(self, points):
        for p in points:
            assert p.enhanced_savings >= p.baseline_savings - 1e-6

    def test_energy_ordering(self, points):
        for p in points:
            assert p.energy_enhanced_j <= p.energy_baseline_j <= p.energy_none_j


class TestFig20Equalization:
    def test_arm_equalizes_with_larger_batches(self):
        """The paper's point: ARM needs bigger batches to match Intel QPS."""
        from repro.hardware.cpu import get_cpu
        from repro.perfmodel.measurements import RetrievalCostModel

        gold = RetrievalCostModel(platform=get_cpu("xeon_gold_6448y"))
        target = gold.throughput_qps(1e9, 32)
        arm_batch = fig20.equalizing_batch("neoverse_n1", target)
        gold_batch = fig20.equalizing_batch("xeon_gold_6448y", target)
        assert arm_batch is not None
        assert arm_batch > gold_batch

    def test_unreachable_target_returns_none(self):
        assert fig20.equalizing_batch("xeon_silver_4316", 1e9) is None

    def test_target_validated(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            fig20.equalizing_batch("xeon_gold_6448y", 0)
