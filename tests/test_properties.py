"""Cross-module property-based tests (hypothesis) on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann.distances import normalize
from repro.ann.flat import FlatIndex
from repro.ann.ivf import IVFIndex
from repro.core.clustering import cluster_datastore
from repro.core.config import HermesConfig
from repro.core.hierarchical import HermesSearcher
from repro.datastore.embeddings import make_corpus
from repro.metrics.ndcg import ndcg_single
from repro.metrics.recall import recall_at_k
from repro.perfmodel.aggregate import expected_deep_loads
from repro.perfmodel.measurements import RetrievalCostModel


class TestIVFInvariants:
    @given(st.integers(0, 2**31 - 1), st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_ivf_is_subset_of_flat_candidates(self, seed, k):
        """Any IVF result id must be a valid stored id, and full-probe IVF
        recall must be perfect."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(120, 8)).astype(np.float32)
        index = IVFIndex(8, nlist=6, nprobe=6)
        index.train(data)
        index.add(data)
        flat = FlatIndex(8)
        flat.add(data)
        queries = rng.normal(size=(4, 8)).astype(np.float32)
        _, truth = flat.search(queries, k)
        _, found = index.search(queries, k)
        assert ((found >= 0) & (found < 120)).all()
        assert recall_at_k(found, truth) == pytest.approx(1.0)


class TestCostModelInvariants:
    @given(
        st.floats(1e6, 1e13),
        st.integers(1, 512),
        st.sampled_from([1, 8, 32, 128]),
    )
    @settings(max_examples=60, deadline=None)
    def test_latency_positive_and_monotone_in_tokens(self, tokens, batch, nprobe):
        cost = RetrievalCostModel()
        latency = cost.batch_latency(tokens, batch, nprobe=nprobe)
        assert latency > 0
        assert cost.batch_latency(tokens * 2, batch, nprobe=nprobe) > latency

    @given(st.floats(1e8, 1e12), st.integers(1, 256))
    @settings(max_examples=40, deadline=None)
    def test_energy_at_least_idle_floor(self, tokens, batch):
        cost = RetrievalCostModel()
        latency = cost.batch_latency(tokens, batch)
        energy = cost.batch_energy(tokens, batch)
        assert energy >= cost.platform.idle_power_w * latency * 0.999

    @given(st.integers(1, 1024))
    @settings(max_examples=40, deadline=None)
    def test_throughput_never_decreases_with_batch(self, batch):
        cost = RetrievalCostModel()
        small = cost.throughput_qps(1e10, batch)
        larger = cost.throughput_qps(1e10, batch + 32)
        assert larger >= small * 0.99


class TestLoadInvariants:
    @given(
        st.integers(1, 256),
        st.integers(2, 12),
        st.integers(1, 12),
        st.floats(0.0, 1.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_expected_loads_conserve_mass(self, batch, n, m, skew):
        from repro.datastore.embeddings import zipf_weights

        m = min(m, n)
        freq = zipf_weights(n, exponent=skew)
        loads = expected_deep_loads(batch, freq, m)
        assert loads.sum() <= batch * m
        assert (loads >= 0).all()
        assert (loads <= batch).all()


class TestNDCGInvariants:
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=8, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_self_ranking_is_one(self, docs):
        arr = np.array(docs)
        assert ndcg_single(arr, arr) == pytest.approx(1.0)

    @given(
        st.lists(st.integers(0, 20), min_size=3, max_size=6, unique=True),
        st.integers(0, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_corruption_never_helps(self, docs, position):
        truth = np.array(docs)
        corrupted = truth.copy()
        corrupted[position % len(truth)] = 999  # replace with a miss
        assert ndcg_single(corrupted, truth) <= 1.0


class TestHermesEndToEndInvariant:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_routing_subset_invariant(self, seed):
        """For any corpus seed: results only come from routed shards, ids are
        unique, and distances are sorted."""
        corpus = make_corpus(600, n_topics=4, dim=16, seed=seed)
        config = HermesConfig(n_clusters=4, clusters_to_search=2)
        datastore = cluster_datastore(corpus.embeddings, config)
        searcher = HermesSearcher(datastore)
        queries = normalize(
            np.random.default_rng(seed).normal(size=(6, 16)).astype(np.float32)
        )
        result = searcher.search(queries, k=4)
        for qi in range(6):
            allowed = set()
            for cid in result.routing.clusters[qi]:
                allowed.update(datastore.shards[int(cid)].global_ids.tolist())
            row = result.ids[qi]
            valid = row[row >= 0]
            assert all(int(d) in allowed for d in valid)
            assert len(set(valid.tolist())) == len(valid)
            dists = result.distances[qi][np.isfinite(result.distances[qi])]
            assert (np.diff(dists) >= -1e-5).all()
