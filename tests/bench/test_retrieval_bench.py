"""The retrieval bench harness: smoke-sized in CI, full-sized under -m bench."""

import json

import pytest

from repro.bench.retrieval import BenchSpec, run_benchmarks


def test_smoke_report_structure(tmp_path):
    out = tmp_path / "BENCH_retrieval.json"
    report = run_benchmarks(smoke=True, out=out)
    assert report["smoke"] is True
    assert json.loads(out.read_text())["bench"] == "retrieval"
    names = {row["index"] for row in report["single_index"]}
    assert names == {"flat", "ivf_flat", "ivf_sq8", "ivf_pq8", "ivf_opq8"}
    for row in report["single_index"]:
        if row["index"] != "flat":
            # run_benchmarks raises if fast and reference paths diverge, so
            # reaching here means every row passed the equivalence assert
            # (both the default and the prune=False strategies).
            assert row["equivalent"] is True
            assert row["after_s"] > 0
            if row["strategy"] == "streaming":
                assert row["cells_pruned"] > 0
    assert report["hierarchical"]["equivalent"] is True
    # The streaming scan must actually prune on the topic-structured corpus.
    assert report["counters"]["ivf_cells_pruned_total"] > 0


def test_smoke_profile_breakdown(tmp_path):
    report = run_benchmarks(
        smoke=True, out=tmp_path / "BENCH_retrieval.json", profile=True
    )
    profile = report["profile"]
    for name in ("route", "sample", "deep_search", "shard_search", "ivf_scan", "merge"):
        assert profile[name]["count"] > 0, name
        assert profile[name]["total_s"] >= 0.0
    assert profile["retrieval_total_s"] > 0


def test_smoke_spec_is_small():
    spec = BenchSpec.smoke()
    assert spec.n_vectors <= 5_000
    assert spec.repeats == 1


@pytest.mark.bench
def test_full_bench_meets_speedup_targets(tmp_path):
    """The PR's acceptance thresholds, checked at full size (slow)."""
    report = run_benchmarks(smoke=False, out=tmp_path / "BENCH_retrieval.json")
    sq8_batch = next(
        row
        for row in report["single_index"]
        if row["index"] == "ivf_sq8" and row["batch"] == 32
    )
    assert sq8_batch["speedup"] >= 3.0
    assert report["hierarchical"]["speedup"] >= 1.5
    for scheme in ("ivf_pq8", "ivf_opq8"):
        row = next(
            r
            for r in report["single_index"]
            if r["index"] == scheme and r["batch"] == 32
        )
        # The streaming cell-pruned scan must add >=1.3x on top of the PR-7
        # dense/sparse strategies for the gather codecs.
        assert row["pruned_speedup"] >= 1.3, row
        assert row["cells_pruned"] > 0
