"""The build bench harness: smoke-sized in CI, full-sized under -m bench."""

import json

import pytest

from repro.bench.build import BenchSpec, run_benchmarks


def test_smoke_report_structure(tmp_path):
    out = tmp_path / "BENCH_build.json"
    report = run_benchmarks(smoke=True, out=out)
    assert report["smoke"] is True
    assert json.loads(out.read_text())["bench"] == "build"
    cases = {row["case"] for row in report["kmeans"]}
    assert cases == {"split", "shard_coarse"}
    for row in report["kmeans"]:
        assert row["reference_s"] > 0 and row["lloyd_s"] > 0
    # run_benchmarks itself asserts the quality-parity fields; reaching
    # here means inertia ratio and recall gap passed at smoke size too.
    build = report["datastore_build"]
    assert build["quality_parity"] is True
    assert build["inertia_ratio"] <= 1.05
    assert build["recall_gap"] <= 0.02
    cache = report["cache"]
    assert (cache["misses"], cache["hits"], cache["stores"]) == (1, 1, 1)


def test_smoke_spec_is_small():
    spec = BenchSpec.smoke()
    assert spec.n_vectors <= 5_000
    assert spec.kmeans_repeats == 1


@pytest.mark.bench
def test_full_bench_meets_speedup_targets(tmp_path):
    """The PR's acceptance thresholds, checked at full size (slow)."""
    report = run_benchmarks(smoke=False, out=tmp_path / "BENCH_build.json")
    assert report["datastore_build"]["speedup"] >= 3.0
    assert report["cache"]["speedup"] >= 2.0
