"""Cross-module integration tests: the full offline + online Hermes flow."""

import numpy as np
import pytest

from repro import (
    GenerationConfig,
    HermesConfig,
    HermesSystem,
    InferenceModel,
    MonolithicRetriever,
    make_corpus,
    ndcg,
)
from repro.core.hierarchical import HermesSearcher
from repro.datastore.chunkstore import ChunkStore
from repro.datastore.corpus import CorpusGenerator, TokenVocabulary, chunk_documents
from repro.datastore.encoder import SyntheticEncoder
from repro.datastore.queries import trivia_queries, uniform_random_queries
from repro.llm.models import PHI_1_5


class TestOfflineToOnline:
    """Build everything from tokens upward and serve queries."""

    @pytest.fixture(scope="class")
    def stack(self):
        vocab = TokenVocabulary(n_topics=6, pool_size=150, common_size=80)
        gen = CorpusGenerator(vocab, doc_tokens=96, topical_fraction=0.75, seed=3)
        docs = gen.generate(300)
        chunks = chunk_documents(docs, chunk_tokens=48)
        encoder = SyntheticEncoder(dim=32, seed=0)
        embeddings = encoder.encode_chunks(chunks)
        system = HermesSystem(
            embeddings,
            total_tokens=10e9,
            config=HermesConfig(n_clusters=6, clusters_to_search=2),
            chunk_store=ChunkStore(chunks),
            encoder=encoder,
            generation=GenerationConfig(batch=8, output_tokens=64),
        )
        return vocab, system

    def test_serving_text_batch(self, stack):
        vocab, system = stack
        queries = [
            " ".join(f"tok{t}" for t in vocab.topic_pool(topic)[:5])
            for topic in (0, 1, 2, 3)
        ]
        response = system.serve(queries)
        assert response.generation.e2e_s > 0
        assert len(response.augmented) == 4

    def test_retrieved_context_topically_relevant(self, stack):
        vocab, system = stack
        query = " ".join(f"tok{t}" for t in vocab.topic_pool(2)[:6])
        response = system.serve([query] * 2)
        context = response.augmented[0].context_texts[0]
        topics = [
            vocab.topic_of_token(int(w[3:]))
            for w in context.split()
            if vocab.topic_of_token(int(w[3:])) >= 0
        ]
        assert np.bincount(topics, minlength=6).argmax() == 2


class TestAccuracyEndToEnd:
    def test_hermes_matches_monolithic_on_fresh_corpus(self):
        corpus = make_corpus(2500, n_topics=8, dim=48, seed=77)
        queries = trivia_queries(corpus.topic_model, 32, seed=78)
        mono = MonolithicRetriever(corpus.embeddings)
        _, truth = mono.ground_truth(queries.embeddings, 5)
        system = HermesSystem(
            corpus.embeddings,
            total_tokens=1e12,
            config=HermesConfig(n_clusters=8, clusters_to_search=3),
        )
        outcome = system.retrieve(queries.embeddings, k=5)
        assert ndcg(outcome.search.ids, truth) > 0.9

    def test_graceful_degradation_on_structureless_queries(self):
        """Adversarial: topic-free queries should degrade, not break."""
        corpus = make_corpus(2000, n_topics=8, dim=48, seed=5)
        queries = uniform_random_queries(48, 16)
        system = HermesSystem(
            corpus.embeddings,
            total_tokens=1e9,
            config=HermesConfig(n_clusters=8, clusters_to_search=3),
        )
        outcome = system.retrieve(queries.embeddings, k=5)
        assert (outcome.search.ids >= 0).all()

        mono = MonolithicRetriever(corpus.embeddings)
        _, truth = mono.ground_truth(queries.embeddings, 5)
        # Searching all clusters recovers most quality even without structure.
        searcher = HermesSearcher(system.datastore)
        full = searcher.search(queries.embeddings, clusters_to_search=8)
        assert ndcg(full.ids, truth) > 0.85


class TestDeploymentVariants:
    def test_small_model_small_fleet(self):
        corpus = make_corpus(1200, n_topics=4, dim=32, seed=9)
        system = HermesSystem(
            corpus.embeddings,
            total_tokens=1e9,
            config=HermesConfig(n_clusters=4, clusters_to_search=2),
            inference=InferenceModel(model=PHI_1_5),
            generation=GenerationConfig(batch=16, output_tokens=32, stride=8),
        )
        response = system.serve(corpus.embeddings[:16])
        assert response.generation.config.n_strides == 4
        assert response.generation.e2e_s > 0

    def test_pipelined_cached_serving(self):
        corpus = make_corpus(1200, n_topics=4, dim=32, seed=10)
        base_cfg = GenerationConfig(batch=16)
        fast_cfg = GenerationConfig(batch=16, pipelined=True, prefix_cached=True)
        base = HermesSystem(
            corpus.embeddings,
            total_tokens=100e9,
            config=HermesConfig(n_clusters=4, clusters_to_search=2),
            generation=base_cfg,
        )
        fast = HermesSystem(
            corpus.embeddings,
            total_tokens=100e9,
            config=HermesConfig(n_clusters=4, clusters_to_search=2),
            generation=fast_cfg,
            datastore=base.datastore,
        )
        q = corpus.embeddings[:16]
        assert fast.serve(q).generation.e2e_s < base.serve(q).generation.e2e_s
