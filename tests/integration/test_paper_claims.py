"""The paper's headline claims, asserted end to end.

Each test names the claim and the paper location it comes from; tolerances
reflect that our substrate is a calibrated model, not the authors' testbed
(EXPERIMENTS.md records the exact measured values).
"""

import pytest

from repro.experiments import common, fig14, fig16, fig18, fig21
from repro.llm.generation import GenerationConfig


class TestAbstractClaims:
    def test_trillion_token_latency_speedup(self):
        """Abstract / §6: 'up to 9.33x speedup in latency' at 1T tokens."""
        point = fig14.sweep_datastore((1e12,))[0]
        assert point.hermes_speedup() > 8.0

    def test_trillion_token_energy_saving(self):
        """Abstract / §6: '2.10x energy efficiency improvements'."""
        point = fig14.sweep_datastore((1e12,))[0]
        assert point.hermes_energy_saving() > 1.8

    def test_no_accuracy_sacrifice(self):
        """Abstract: 'without sacrificing retrieval quality'."""
        from repro.experiments import fig11

        sweep = fig11.run(clusters=(3,))
        assert sweep.hermes[0] >= sweep.monolithic - 0.03


class TestTakeaway2TTFT:
    def test_ttft_speedup_9x_at_1t(self):
        """§6 Takeaway 2 / Fig. 16: '9.1x improvements in latency during
        TTFT at the trillion token scale'."""
        points = fig16.run(sizes=(1e12,))
        assert points[0].hermes_ttft_speedup() == pytest.approx(9.1, rel=0.25)


class TestTakeaway4Throughput:
    def test_three_cluster_ratios(self):
        """§6 Takeaway 4 / Fig. 18: 1.81x throughput, 1.77x energy at 3 of
        10 clusters (naive distributed baseline)."""
        ratios = fig18.hermes_vs_naive(fig18.run())
        assert ratios["throughput_gain"] == pytest.approx(1.81, rel=0.25)
        assert ratios["energy_saving"] == pytest.approx(1.77, rel=0.25)


class TestDVFSClaims:
    def test_average_savings(self):
        """Fig. 21: 12.24% average baseline DVFS, 20.44% enhanced."""
        avg = fig21.average_savings(fig21.run())
        assert avg["baseline"] == pytest.approx(0.1224, abs=0.05)
        assert avg["enhanced"] == pytest.approx(0.2044, abs=0.06)


class TestScalingBehaviour:
    def test_gains_less_pronounced_for_small_datastores(self):
        """§6 Takeaway 1: at 1B tokens the GPU is the bottleneck, so Hermes
        gains shrink."""
        small = fig14.sweep_datastore((1e9,))[0]
        large = fig14.sweep_datastore((1e12,))[0]
        assert small.hermes_speedup() < large.hermes_speedup() / 2

    def test_stride4_cumulative_gains(self):
        """§6 Takeaway 1: stride 4 reaches ~10.12x latency / ~2.37x energy."""
        point = fig14.sweep_stride((4,))[0]
        assert point.hermes_speedup() > 6.0
        assert point.hermes_energy_saving() > 1.8

    def test_hermes_shifts_critical_path_to_gpu(self):
        """Intro: Hermes shifts the critical path from CPU retrieval to GPU
        inference (at the evaluation's 10B default)."""
        outcomes = common.compare_strategies(10e9, GenerationConfig(batch=128))
        hermes = outcomes["hermes"].result
        per_stride_retrieval = hermes.retrieval_s / hermes.config.n_strides
        per_stride_inference = (
            hermes.prefill_s + hermes.decode_s
        ) / hermes.config.n_strides
        assert per_stride_retrieval < per_stride_inference

        baseline = outcomes["baseline"].result
        base_retrieval = baseline.retrieval_s / baseline.config.n_strides
        base_inference = (
            baseline.prefill_s + baseline.decode_s
        ) / baseline.config.n_strides
        assert base_retrieval > base_inference
