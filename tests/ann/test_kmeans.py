"""Tests for K-means and the imbalance-minimising seed sweep."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann.kmeans import assign_to_centroids, kmeans, kmeans_seed_sweep


def blobs(k=5, per=100, dim=8, scale=6.0, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=scale, size=(k, dim))
    data = np.concatenate(
        [centers[i] + rng.normal(size=(per, dim)) for i in range(k)]
    ).astype(np.float32)
    labels = np.repeat(np.arange(k), per)
    return data, labels


class TestKMeans:
    def test_recovers_separated_blobs(self):
        data, labels = blobs()
        result = kmeans(data, 5, seed=1)
        # Every found cluster should be dominated by a single true blob.
        for cid in range(5):
            members = labels[result.assignments == cid]
            if len(members):
                dominant = np.bincount(members).max() / len(members)
                assert dominant > 0.9

    def test_assignments_match_nearest_centroid(self):
        data, _ = blobs(seed=2)
        result = kmeans(data, 4, seed=0)
        expected = assign_to_centroids(data, result.centroids)
        assert np.array_equal(result.assignments, expected)

    def test_inertia_decreases_with_more_clusters(self):
        data, _ = blobs(seed=3)
        few = kmeans(data, 2, seed=0)
        many = kmeans(data, 10, seed=0)
        assert many.inertia < few.inertia

    def test_no_empty_clusters(self):
        data, _ = blobs(k=3, per=50, seed=4)
        result = kmeans(data, 8, seed=0)
        assert (result.sizes > 0).all()

    def test_runs_more_than_one_iteration(self):
        data, _ = blobs(seed=5)
        result = kmeans(data, 5, seed=0)
        assert result.n_iter > 1

    def test_deterministic_for_seed(self):
        data, _ = blobs(seed=6)
        a = kmeans(data, 4, seed=7)
        b = kmeans(data, 4, seed=7)
        assert np.array_equal(a.assignments, b.assignments)

    def test_rejects_k_larger_than_n(self):
        with pytest.raises(ValueError, match="at least"):
            kmeans(np.zeros((3, 2), dtype=np.float32), 5)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((10, 2), dtype=np.float32), 0)

    def test_rejects_unknown_init(self):
        data, _ = blobs()
        with pytest.raises(ValueError, match="init"):
            kmeans(data, 3, init="spectral")

    def test_random_init_supported(self):
        data, _ = blobs()
        result = kmeans(data, 5, seed=0, init="random")
        assert (result.sizes > 0).all()

    @given(st.integers(2, 6))
    @settings(max_examples=8, deadline=None)
    def test_sizes_sum_to_n(self, k):
        data, _ = blobs(k=6, per=40, seed=9)
        result = kmeans(data, k, seed=0)
        assert result.sizes.sum() == len(data)


class TestImbalance:
    def test_balanced_data_low_imbalance(self):
        data, _ = blobs(k=4, per=200, scale=10.0, seed=10)
        result = kmeans(data, 4, seed=0)
        assert result.imbalance < 1.5

    def test_empty_cluster_reports_inf(self):
        from repro.ann.kmeans import KMeansResult

        result = KMeansResult(
            centroids=np.zeros((3, 2), dtype=np.float32),
            assignments=np.array([0, 0, 1, 1]),
            inertia=0.0,
            n_iter=1,
            seed=0,
        )
        assert result.imbalance == float("inf")


class TestSeedSweep:
    def test_never_worse_than_single_default_seed(self):
        data, _ = blobs(k=5, per=120, scale=3.0, seed=11)
        swept = kmeans_seed_sweep(data, 5, seeds=(0, 1, 2, 3))
        assert np.isfinite(swept.imbalance)
        assert (swept.sizes > 0).all()

    def test_returns_full_data_clustering(self):
        data, _ = blobs(seed=12)
        swept = kmeans_seed_sweep(data, 5)
        assert len(swept.assignments) == len(data)

    def test_subset_fraction_validated(self):
        data, _ = blobs()
        with pytest.raises(ValueError, match="subset_fraction"):
            kmeans_seed_sweep(data, 3, subset_fraction=0.0)

    def test_winning_seed_among_candidates(self):
        data, _ = blobs(seed=13)
        seeds = (3, 5, 9)
        swept = kmeans_seed_sweep(data, 4, seeds=seeds)
        assert swept.seed in seeds


class TestAssignToCentroids:
    def test_nearest_assignment(self):
        centroids = np.array([[0, 0], [10, 10]], dtype=np.float32)
        points = np.array([[1, 1], [9, 9]], dtype=np.float32)
        assert list(assign_to_centroids(points, centroids)) == [0, 1]

    def test_ip_metric_assignment(self):
        centroids = np.array([[1, 0], [0, 1]], dtype=np.float32)
        points = np.array([[0.9, 0.1]], dtype=np.float32)
        assert assign_to_centroids(points, centroids, metric="ip")[0] == 0


class TestMiniBatch:
    def test_quality_within_bound_of_full_lloyd(self):
        from repro.ann.kmeans import kmeans_minibatch

        data, _ = blobs(k=6, per=600, dim=16, scale=4.0, seed=20)
        full = kmeans(data, 6, seed=0)
        mb = kmeans_minibatch(data, 6, seed=0, batch_size=512)
        assert mb.inertia <= full.inertia * 1.05

    def test_falls_back_to_lloyd_for_small_inputs(self):
        from repro.ann.kmeans import kmeans_minibatch

        data, _ = blobs(k=3, per=50, seed=21)
        full = kmeans(data, 3, seed=0)
        mb = kmeans_minibatch(data, 3, seed=0, batch_size=10_000)
        assert np.allclose(mb.centroids, full.centroids)
        assert mb.inertia == pytest.approx(full.inertia)

    def test_assignments_match_nearest_centroid(self):
        from repro.ann.kmeans import kmeans_minibatch

        data, _ = blobs(k=4, per=400, seed=22)
        result = kmeans_minibatch(data, 4, seed=0, batch_size=256)
        expected = assign_to_centroids(data, result.centroids)
        assert np.array_equal(result.assignments, expected)

    def test_deterministic_under_fixed_seed(self):
        from repro.ann.kmeans import kmeans_minibatch

        data, _ = blobs(k=4, per=400, seed=23)
        a = kmeans_minibatch(data, 4, seed=7, batch_size=256)
        b = kmeans_minibatch(data, 4, seed=7, batch_size=256)
        assert np.array_equal(a.centroids, b.centroids)
        assert np.array_equal(a.assignments, b.assignments)


class TestTrainKMeans:
    def test_rejects_unknown_algorithm(self):
        from repro.ann.kmeans import train_kmeans

        data, _ = blobs()
        with pytest.raises(ValueError, match="algorithm"):
            train_kmeans(data, 3, algorithm="annealing")

    def test_auto_dispatches_on_threshold(self):
        from repro.ann.kmeans import kmeans_minibatch, train_kmeans

        data, _ = blobs(k=4, per=100, seed=24)
        small = train_kmeans(data, 4, seed=0, minibatch_threshold=10_000)
        assert np.allclose(small.centroids, kmeans(data, 4, seed=0).centroids)
        large = train_kmeans(data, 4, seed=0, minibatch_threshold=10)
        assert np.allclose(
            large.centroids, kmeans_minibatch(data, 4, seed=0).centroids
        )

    def test_reference_path_preserved(self):
        from repro.ann.kmeans import kmeans_reference, train_kmeans

        data, _ = blobs(k=3, per=80, seed=25)
        forced = train_kmeans(data, 3, seed=1, algorithm="reference")
        direct = kmeans_reference(data, 3, seed=1)
        assert np.array_equal(forced.assignments, direct.assignments)
        assert forced.inertia == pytest.approx(direct.inertia)

    def test_chunked_estep_matches_reference_lloyd(self):
        from repro.ann.kmeans import kmeans_reference

        data, _ = blobs(k=5, per=200, dim=12, seed=26)
        chunked = kmeans(data, 5, seed=0, chunk_size=64)
        whole = kmeans(data, 5, seed=0)
        reference = kmeans_reference(data, 5, seed=0)
        assert np.array_equal(chunked.assignments, whole.assignments)
        assert chunked.inertia == pytest.approx(whole.inertia, rel=1e-5)
        assert chunked.inertia == pytest.approx(reference.inertia, rel=1e-3)


class TestSeedSweepDeterminism:
    def test_tie_breaks_to_lowest_seed(self):
        # Well-separated equal-size blobs: every seed recovers the perfect
        # clustering, so all imbalances tie and the lowest seed must win
        # regardless of the order seeds are listed or evaluated in.
        data, _ = blobs(k=4, per=150, scale=12.0, seed=27)
        for seeds in [(5, 3, 9), (9, 5, 3), (3, 9, 5)]:
            swept = kmeans_seed_sweep(data, 4, seeds=seeds)
            assert swept.seed == 3

    def test_workers_do_not_change_winner(self):
        data, _ = blobs(k=5, per=120, scale=2.0, seed=28)
        serial = kmeans_seed_sweep(data, 5, seeds=(0, 1, 2, 3), workers=1)
        threaded = kmeans_seed_sweep(data, 5, seeds=(0, 1, 2, 3), workers=4)
        assert serial.seed == threaded.seed
        assert np.array_equal(serial.centroids, threaded.centroids)
        assert np.array_equal(serial.assignments, threaded.assignments)


class TestChunkedAssign:
    def test_chunking_invariant(self):
        data, _ = blobs(k=6, per=100, seed=29)
        centroids = kmeans(data, 6, seed=0).centroids
        whole = assign_to_centroids(data, centroids)
        chunked = assign_to_centroids(data, centroids, chunk_size=37)
        assert np.array_equal(whole, chunked)

    def test_chunk_size_validated(self):
        data, _ = blobs()
        centroids = data[:3]
        with pytest.raises(ValueError, match="chunk_size"):
            assign_to_centroids(data, centroids, chunk_size=0)
