"""Tests for index save/load round-trips."""

import numpy as np
import pytest

from repro.ann.flat import FlatIndex
from repro.ann.ivf import IVFIndex
from repro.ann.persistence import load_index, save_flat, save_ivf
from repro.ann.quantization import make_quantizer


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    return rng.normal(size=(400, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def queries(data):
    return data[:8] + 0.01


class TestFlatRoundTrip:
    def test_search_identical(self, data, queries, tmp_path_factory):
        path = tmp_path_factory.mktemp("idx") / "flat.npz"
        index = FlatIndex(16, "ip")
        index.add(data)
        save_flat(index, path)
        loaded = load_index(path)
        d0, i0 = index.search(queries, 5)
        d1, i1 = loaded.search(queries, 5)
        assert np.array_equal(i0, i1)
        assert np.allclose(d0, d1)
        assert loaded.metric == "ip"

    def test_empty_flat(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_flat(FlatIndex(8), path)
        loaded = load_index(path)
        assert loaded.ntotal == 0


@pytest.mark.parametrize("scheme", ["flat", "sq8", "sq4", "pq4", "opq4"])
class TestIVFRoundTrip:
    def test_search_identical(self, scheme, data, queries, tmp_path):
        path = tmp_path / f"ivf_{scheme}.npz"
        index = IVFIndex(
            16, "l2", nlist=8, nprobe=4, quantizer=make_quantizer(scheme, 16)
        )
        index.train(data)
        index.add(data)
        save_ivf(index, path)
        loaded = load_index(path)
        assert loaded.ntotal == index.ntotal
        d0, i0 = index.search(queries, 5)
        d1, i1 = loaded.search(queries, 5)
        assert np.array_equal(i0, i1)
        assert np.allclose(d0, d1, atol=1e-5)

    def test_nprobe_override_still_works(self, scheme, data, queries, tmp_path):
        path = tmp_path / f"ivf2_{scheme}.npz"
        index = IVFIndex(
            16, "l2", nlist=8, nprobe=1, quantizer=make_quantizer(scheme, 16)
        )
        index.train(data)
        index.add(data)
        save_ivf(index, path)
        loaded = load_index(path)
        _, shallow = loaded.search(queries, 5)
        _, deep = loaded.search(queries, 5, nprobe=8)
        assert (deep >= -1).all()
        assert not np.array_equal(shallow, deep) or True  # both valid searches


class TestErrors:
    def test_untrained_ivf_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="untrained"):
            save_ivf(IVFIndex(8, nlist=4), tmp_path / "x.npz")

    def test_loading_garbage_fails_cleanly(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, header='{"format": 999, "type": "flat"}')
        with pytest.raises(ValueError, match="format"):
            load_index(path)


class TestScanStateRoundTrip:
    """Format 3 persists the derived scan state, so a loaded index serves
    its first search without recompaction or a decode pass (PR issue: the
    load-then-search latency regression)."""

    def _built(self, data, scheme):
        index = IVFIndex(
            16, "l2", nlist=8, nprobe=8, quantizer=make_quantizer(scheme, 16)
        )
        index.train(data)
        index.add(data)
        index.compact()
        return index

    @pytest.mark.parametrize("scheme", ["sq8", "pq4"])
    def test_loaded_index_is_compacted(self, scheme, data, tmp_path):
        index = self._built(data, scheme)
        path = tmp_path / "idx.npz"
        save_ivf(index, path)
        loaded = load_index(path)
        assert loaded.is_compacted
        assert loaded._code_cells is not None

    @pytest.mark.parametrize("scheme", ["sq8", "pq4"])
    def test_first_search_triggers_no_compaction(self, scheme, data, queries, tmp_path):
        index = self._built(data, scheme)
        path = tmp_path / "idx.npz"
        save_ivf(index, path)
        loaded = load_index(path)
        before = loaded.compactions
        loaded.search(queries, 5)
        assert loaded.compactions == before

    def test_code_sqnorms_persisted_for_adc_l2(self, data, queries, tmp_path):
        # SQ under L2 needs per-code squared norms -- an expensive full
        # decode pass if recomputed; the save must carry them. (PQ embeds
        # the norm terms in its per-query ADC tables instead.)
        index = self._built(data, "sq8")
        index.search(queries, 5)  # materialise the norms
        path = tmp_path / "idx.npz"
        save_ivf(index, path)
        loaded = load_index(path)
        assert loaded._code_sqnorms is not None
        assert np.allclose(loaded._code_sqnorms, index._code_sqnorms)

    def test_save_computes_missing_sqnorms(self, data, tmp_path):
        # Saving right after build (norms never materialised) must still
        # persist them rather than leaving the cost to the loader.
        index = self._built(data, "sq8")
        assert index._code_sqnorms is None
        save_ivf(index, tmp_path / "idx.npz")
        loaded = load_index(tmp_path / "idx.npz")
        assert loaded._code_sqnorms is not None

    @pytest.mark.parametrize("scheme", ["sq8", "pq4"])
    def test_format4_persists_pruning_radii(self, scheme, data, queries, tmp_path):
        # Format 4 carries the per-code residual radii in radius-sorted cell
        # order, so the loaded index streams with pruning immediately --
        # no decode pass on first search.
        index = self._built(data, scheme)
        index.warm_scan_state()
        path = tmp_path / "idx.npz"
        save_ivf(index, path)
        loaded = load_index(path)
        assert loaded._code_radii is not None
        np.testing.assert_array_equal(loaded._code_radii, index._code_radii)
        d0, i0 = index.search(queries, 5, prune=True)
        d1, i1 = loaded.search(queries, 5, prune=True)
        assert np.array_equal(i0, i1)
        assert np.allclose(d0, d1, atol=1e-5)

    def test_format3_files_warm_lazily(self, data, queries, tmp_path):
        # A format-3 file has no radii: the loader leaves them unset and the
        # first pruned search recomputes them (correctness over latency).
        import json

        from repro.ann import persistence

        index = self._built(data, "pq4")
        path = tmp_path / "v3.npz"
        save_ivf(index, path)
        with np.load(path, allow_pickle=False) as saved:
            arrays = {name: saved[name] for name in saved.files}
        header = json.loads(str(arrays["header"]))
        header["format"] = 3
        arrays["header"] = json.dumps(header)
        arrays.pop("code_radii", None)
        np.savez_compressed(path, **arrays)
        assert persistence.FORMAT_VERSION >= 4
        loaded = load_index(path)
        assert loaded._code_radii is None
        d0, i0 = index.search(queries, 5, prune=True)
        d1, i1 = loaded.search(queries, 5, prune=True)
        assert loaded._code_radii is not None
        assert np.array_equal(i0, i1)
        assert np.allclose(d0, d1, atol=1e-5)

    def test_format2_files_still_load(self, data, queries, tmp_path):
        import json

        from repro.ann import persistence

        index = self._built(data, "sq8")
        path = tmp_path / "v2.npz"
        save_ivf(index, path)
        # Rewrite the file as a format-2 payload (no derived scan state).
        with np.load(path, allow_pickle=False) as saved:
            arrays = {name: saved[name] for name in saved.files}
        header = json.loads(str(arrays["header"]))
        header["format"] = 2
        arrays["header"] = json.dumps(header)
        arrays.pop("code_sqnorms", None)
        np.savez_compressed(path, **arrays)
        assert persistence.FORMAT_VERSION >= 3
        loaded = load_index(path)
        d0, i0 = index.search(queries, 5)
        d1, i1 = loaded.search(queries, 5)
        assert np.array_equal(i0, i1)
        assert np.allclose(d0, d1)
