"""Unit and property tests for the distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ann.distances import (
    as_matrix,
    inner_product,
    normalize,
    pairwise_distance,
    squared_l2,
    top_k,
    validate_metric,
)


def small_matrices(max_rows=8, max_dim=6):
    return hnp.arrays(
        np.float32,
        st.tuples(
            st.integers(1, max_rows), st.integers(1, max_dim)
        ),
        elements=st.floats(-10, 10, width=32),
    )


class TestValidateMetric:
    def test_accepts_l2(self):
        assert validate_metric("l2") == "l2"

    def test_accepts_ip(self):
        assert validate_metric("ip") == "ip"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown metric"):
            validate_metric("cosine")


class TestAsMatrix:
    def test_promotes_vector_to_row(self):
        out = as_matrix(np.zeros(4))
        assert out.shape == (1, 4)

    def test_passes_through_matrix(self):
        out = as_matrix(np.zeros((3, 4)))
        assert out.shape == (3, 4)

    def test_casts_to_float32(self):
        out = as_matrix(np.zeros((2, 2), dtype=np.float64))
        assert out.dtype == np.float32

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            as_matrix(np.zeros((2, 2, 2)))


class TestSquaredL2:
    def test_zero_distance_to_self(self):
        x = np.random.default_rng(0).normal(size=(5, 8)).astype(np.float32)
        d = squared_l2(x, x)
        assert np.allclose(np.diag(d), 0.0, atol=1e-4)

    def test_matches_naive(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(4, 6)).astype(np.float32)
        p = rng.normal(size=(7, 6)).astype(np.float32)
        expected = ((q[:, None, :] - p[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(squared_l2(q, p), expected, atol=1e-3)

    def test_non_negative(self):
        rng = np.random.default_rng(2)
        q = rng.normal(size=(10, 4)).astype(np.float32) * 100
        d = squared_l2(q, q)
        assert (d >= 0).all()

    @given(small_matrices())
    @settings(max_examples=25, deadline=None)
    def test_symmetric_on_same_set(self, x):
        d = squared_l2(x, x)
        assert np.allclose(d, d.T, atol=1e-2)


class TestInnerProduct:
    def test_matches_matmul(self):
        rng = np.random.default_rng(3)
        q = rng.normal(size=(3, 5)).astype(np.float32)
        p = rng.normal(size=(4, 5)).astype(np.float32)
        assert np.allclose(inner_product(q, p), q @ p.T)


class TestPairwiseDistance:
    def test_ip_is_negated_similarity(self):
        rng = np.random.default_rng(4)
        q = rng.normal(size=(3, 5)).astype(np.float32)
        p = rng.normal(size=(4, 5)).astype(np.float32)
        assert np.allclose(pairwise_distance(q, p, "ip"), -(q @ p.T))

    def test_smaller_is_closer_for_both_metrics(self):
        # A point and its near-duplicate should beat a far point.
        anchor = np.ones((1, 4), dtype=np.float32)
        near = anchor * 1.01
        far = -anchor
        points = np.concatenate([near, far])
        for metric in ("l2", "ip"):
            d = pairwise_distance(anchor, points, metric)
            assert d[0, 0] < d[0, 1]

    def test_rejects_bad_metric(self):
        with pytest.raises(ValueError):
            pairwise_distance(np.zeros((1, 2)), np.zeros((1, 2)), "hamming")


class TestTopK:
    def test_returns_sorted_ascending(self):
        d = np.array([[3.0, 1.0, 2.0]])
        dists, ids = top_k(d, 3)
        assert list(ids[0]) == [1, 2, 0]
        assert list(dists[0]) == [1.0, 2.0, 3.0]

    def test_partial_selection_matches_full_sort(self):
        rng = np.random.default_rng(5)
        d = rng.normal(size=(6, 50))
        dists, ids = top_k(d, 5)
        full = np.sort(d, axis=1)[:, :5]
        assert np.allclose(dists, full)

    def test_pads_when_k_exceeds_columns(self):
        d = np.array([[1.0, 2.0]])
        dists, ids = top_k(d, 4)
        assert list(ids[0, 2:]) == [-1, -1]
        assert np.isinf(dists[0, 2:]).all()

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            top_k(np.zeros((1, 3)), 0)

    def test_ties_break_by_column_index(self):
        # The k-th value ties with columns beyond the cut: argpartition may
        # keep an arbitrary tied subset, but the contract is lowest indices.
        d = np.array([[5.0, 1.0, 1.0, 1.0, 1.0, 0.5]])
        dists, ids = top_k(d, 3)
        assert list(ids[0]) == [5, 1, 2]
        d = np.array([[2.0, 2.0, 2.0, 2.0]])
        _, ids = top_k(d, 2)
        assert list(ids[0]) == [0, 1]

    def test_duplicated_vector_ids_are_deterministic(self):
        # Duplicated corpus vectors yield exactly-tied distances; every k
        # cut must return the lowest-index duplicates, matching a full
        # stable sort (the regression behind the streaming-merge tie rules).
        rng = np.random.default_rng(11)
        base = rng.normal(size=(1, 8)).astype(np.float32)
        points = np.repeat(rng.normal(size=(7, 8)).astype(np.float32), 4, axis=0)
        d = pairwise_distance(base, points)
        for k in range(1, points.shape[0] + 1):
            _, ids = top_k(d, k)
            expect = np.argsort(d[0], kind="stable")[:k]
            np.testing.assert_array_equal(ids[0], expect)

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(1, 20)),
            elements=st.floats(-1e3, 1e3),
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_values_are_row_minima(self, d, k):
        dists, ids = top_k(d, k)
        kk = min(k, d.shape[1])
        expected = np.sort(d, axis=1)[:, :kk]
        assert np.allclose(dists[:, :kk], expected)


class TestNormalize:
    def test_unit_norm_rows(self):
        rng = np.random.default_rng(6)
        v = rng.normal(size=(10, 8)).astype(np.float32)
        n = normalize(v)
        assert np.allclose(np.linalg.norm(n, axis=1), 1.0, atol=1e-5)

    def test_zero_vector_survives(self):
        n = normalize(np.zeros((1, 4)))
        assert np.isfinite(n).all()
