"""Mutation-equivalence layer: live shards vs a flat brute-force oracle.

The contract (``repro/ann/delta.py``): at every point of any interleaving of
inserts, deletes, searches, and compactions, a live shard's search must
return exactly the ids a flat brute-force scan over the decoded *live*
vectors (in insertion order, stable tie-break) would return — and the same
ids must survive compaction and match a rebuild-from-scratch over the live
set. Hypothesis drives random schedules across codecs and metrics; explicit
tests cover duplicates, delete-then-reinsert, and thread/process parity.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann.distances import pairwise_distance, top_k
from repro.ann.ivf import IVFIndex
from repro.ann.quantization import make_quantizer
from repro.core.clustering import IndexShard

DIM = 16
NLIST = 6
K = 10
ACTIONS = ("insert", "dup", "delete", "reinsert", "compact")


def build_shard(scheme: str, metric: str, base: np.ndarray) -> IndexShard:
    index = IVFIndex(
        DIM,
        metric,
        nlist=NLIST,
        nprobe=NLIST,  # full probe: the regime where equivalence is exact
        quantizer=make_quantizer(scheme, DIM),
        train_seed=0,
    )
    index.train(base)
    index.add(base)
    return IndexShard(
        shard_id=0,
        index=index,
        global_ids=np.arange(len(base), dtype=np.int64),
        centroid=base.mean(axis=0),
    )


class FlatOracle:
    """Ground truth: brute force over decoded live vectors, insertion order.

    Stores every raw vector by global id; a search decodes the encoded live
    set (the same lossy codes the shard serves) and ranks with the stable
    ``top_k``, so exact distance ties resolve to the earliest insertion —
    the order the shard's sealed-first merge must reproduce.
    """

    def __init__(self, quantizer, metric: str, base: np.ndarray) -> None:
        self.quantizer = quantizer
        self.metric = metric
        self.raw = [row.copy() for row in base]
        self.live = list(range(len(base)))

    def insert(self, vectors: np.ndarray) -> np.ndarray:
        ids = np.arange(len(self.raw), len(self.raw) + len(vectors), dtype=np.int64)
        for row in vectors:
            self.live.append(len(self.raw))
            self.raw.append(np.asarray(row, dtype=np.float32).copy())
        return ids

    def delete(self, global_ids) -> None:
        doomed = {int(g) for g in global_ids}
        self.live = [g for g in self.live if g not in doomed]

    def search(self, queries: np.ndarray, k: int):
        ids = np.asarray(self.live, dtype=np.int64)
        if not len(ids):
            nq = len(queries)
            return (
                np.full((nq, k), np.inf, dtype=np.float32),
                np.full((nq, k), -1, dtype=np.int64),
            )
        stacked = np.stack([self.raw[g] for g in self.live])
        decoded = self.quantizer.decode(self.quantizer.encode(stacked))
        dists = pairwise_distance(
            np.asarray(queries, dtype=np.float32), decoded, self.metric
        )
        out_d, cols = top_k(dists, k)
        out_i = np.where(cols >= 0, ids[np.clip(cols, 0, None)], -1)
        out_d = np.where(out_i < 0, np.inf, out_d)
        return out_d, out_i


def assert_ids_match_up_to_duplicate_ties(got_i, want_i, oracle: FlatOracle):
    """Ids must match exactly — except inside groups of identical codes.

    Two documents encoding to the same code have mathematically equal
    distances, but BLAS kernels round identical columns differently
    depending on their position in the matrix (remainder lanes), so the
    order *within* such a duplicate group is implementation-defined. Any
    columnwise mismatch must therefore be between code-identical documents.
    """
    if np.array_equal(got_i, want_i):
        return
    got_i = np.atleast_2d(got_i)
    want_i = np.atleast_2d(want_i)
    for row, col in zip(*np.nonzero(got_i != want_i)):
        a, b = int(got_i[row, col]), int(want_i[row, col])
        assert a >= 0 and b >= 0, f"padding mismatch at ({row}, {col}): {a} vs {b}"
        code_a = oracle.quantizer.encode(oracle.raw[a][np.newaxis]).tobytes()
        code_b = oracle.quantizer.encode(oracle.raw[b][np.newaxis]).tobytes()
        assert code_a == code_b, (
            f"ids differ at ({row}, {col}): {a} vs {b}, and they are not "
            "code-identical duplicates"
        )


def assert_shard_matches_oracle(shard: IndexShard, oracle: FlatOracle, queries):
    got_d, got_i = shard.search(queries, K)
    want_d, want_i = oracle.search(queries, K)
    assert_ids_match_up_to_duplicate_ties(got_i, want_i, oracle)
    finite = np.isfinite(want_d)
    np.testing.assert_array_equal(finite, np.isfinite(got_d))
    # ids exact (up to duplicate ties); distances only up to ADC-vs-decode
    # fp32 reassociation noise.
    np.testing.assert_allclose(
        got_d[finite], want_d[finite], rtol=1e-3, atol=5e-3
    )


def rebuild_from_scratch(shard: IndexShard, oracle: FlatOracle) -> IVFIndex:
    """(c): an offline build over the current live raw vectors."""
    fresh = shard.index.fresh_sealed_like()
    if oracle.live:
        fresh.add(np.stack([oracle.raw[g] for g in oracle.live]))
    fresh.warm_scan_state()
    return fresh


def apply_action(action, shard, oracle, rng, graveyard):
    """One schedule step, mirrored on shard and oracle."""
    if action == "insert":
        vecs = rng.normal(size=(int(rng.integers(1, 5)), DIM)).astype(np.float32)
    elif action == "dup":
        if not oracle.live:
            return
        pick = int(rng.choice(np.asarray(oracle.live)))
        vecs = oracle.raw[pick][np.newaxis].repeat(2, axis=0)
    elif action == "reinsert":
        if not graveyard:
            return
        vecs = graveyard.pop()[np.newaxis]
    elif action == "delete":
        if not oracle.live:
            return
        n = min(len(oracle.live), int(rng.integers(1, 4)))
        victims = rng.choice(np.asarray(oracle.live), size=n, replace=False)
        graveyard.extend(oracle.raw[int(g)] for g in victims)
        shard.delete(victims)
        oracle.delete(victims)
        return
    elif action == "compact":
        shard.compact()
        return
    else:  # pragma: no cover - strategy only emits the actions above
        raise AssertionError(action)
    ids = oracle.insert(vecs)
    shard.insert(vecs, ids)


class TestScheduleEquivalence:
    """Random mutation schedules, checked against the oracle at every step."""

    @pytest.mark.parametrize("metric", ["l2", "ip"])
    @pytest.mark.parametrize("scheme", ["flat", "sq8", "pq4"])
    @given(
        seed=st.integers(0, 2**31 - 1),
        schedule=st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=10),
    )
    @settings(deadline=None)
    def test_matches_oracle_at_every_step(self, metric, scheme, seed, schedule):
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(48, DIM)).astype(np.float32)
        shard = build_shard(scheme, metric, base)
        oracle = FlatOracle(shard.index.quantizer, metric, base)
        queries = rng.normal(size=(3, DIM)).astype(np.float32)
        graveyard: list = []

        assert_shard_matches_oracle(shard, oracle, queries)
        for action in schedule:
            apply_action(action, shard, oracle, rng, graveyard)
            assert_shard_matches_oracle(shard, oracle, queries)

        # (b): compaction must not change a single id (up to duplicate ties,
        # which move between the delta and sealed scan kernels).
        live_d, live_i = shard.search(queries, K)
        shard.compact()
        assert not shard.has_mutations
        comp_d, comp_i = shard.search(queries, K)
        assert_ids_match_up_to_duplicate_ties(live_i, comp_i, oracle)
        np.testing.assert_allclose(live_d, comp_d, rtol=1e-3, atol=5e-3)
        assert_shard_matches_oracle(shard, oracle, queries)

        # (c): the compacted index is bit-identical to an offline rebuild
        # over the live set — same codes, same cells, same CSR layout.
        rebuilt = rebuild_from_scratch(shard, oracle)
        reb_d, reb_pos = rebuilt.search(queries, K)
        live_ids = np.asarray(oracle.live, dtype=np.int64)
        reb_i = np.where(reb_pos >= 0, live_ids[np.clip(reb_pos, 0, None)], -1)
        np.testing.assert_array_equal(comp_i, reb_i)
        np.testing.assert_array_equal(comp_d, reb_d)


class TestExplicitEdges:
    """Deterministic regressions for the hairiest schedule shapes."""

    @pytest.mark.parametrize("metric", ["l2", "ip"])
    def test_duplicates_straddling_the_delta_boundary(self, metric):
        rng = np.random.default_rng(3)
        base = rng.normal(size=(30, DIM)).astype(np.float32)
        shard = build_shard("sq8", metric, base)
        oracle = FlatOracle(shard.index.quantizer, metric, base)
        # Same vector on both sides of the sealed/delta boundary.
        dup = base[7][np.newaxis].repeat(3, axis=0)
        ids = oracle.insert(dup)
        shard.insert(dup, ids)
        q = base[7][np.newaxis] + 1e-4
        assert_shard_matches_oracle(shard, oracle, q)
        # All four code-identical copies (sealed original + three delta rows)
        # outrank everything else; their internal order is kernel-defined.
        expected_group = {7, *ids.tolist()}
        _, got_i = shard.search(q, 5)
        assert set(got_i[0, :4].tolist()) == expected_group
        shard.compact()
        assert_shard_matches_oracle(shard, oracle, q)
        _, got_i = shard.search(q, 5)
        assert set(got_i[0, :4].tolist()) == expected_group

    def test_delete_then_reinsert_gets_a_fresh_id(self):
        rng = np.random.default_rng(4)
        base = rng.normal(size=(30, DIM)).astype(np.float32)
        shard = build_shard("flat", "l2", base)
        oracle = FlatOracle(shard.index.quantizer, "l2", base)
        victim = base[11].copy()
        shard.delete([11])
        oracle.delete([11])
        q = victim[np.newaxis]
        _, before = shard.search(q, 3)
        assert 11 not in before
        ids = oracle.insert(victim[np.newaxis])
        shard.insert(victim[np.newaxis], ids)
        assert ids[0] == 30  # ids are never reused
        assert_shard_matches_oracle(shard, oracle, q)
        _, after = shard.search(q, 3)
        assert after[0, 0] == 30
        shard.compact()
        assert_shard_matches_oracle(shard, oracle, q)

    def test_double_delete_raises(self):
        rng = np.random.default_rng(5)
        base = rng.normal(size=(20, DIM)).astype(np.float32)
        shard = build_shard("flat", "l2", base)
        shard.delete([3])
        with pytest.raises(KeyError, match="already deleted"):
            shard.delete([3])
        with pytest.raises(KeyError, match="unknown"):
            shard.delete([999])

    def test_delete_everything_then_search(self):
        rng = np.random.default_rng(6)
        base = rng.normal(size=(12, DIM)).astype(np.float32)
        shard = build_shard("sq8", "l2", base)
        oracle = FlatOracle(shard.index.quantizer, "l2", base)
        shard.delete(np.arange(12))
        oracle.delete(np.arange(12))
        q = rng.normal(size=(2, DIM)).astype(np.float32)
        assert len(shard) == 0
        assert_shard_matches_oracle(shard, oracle, q)
        shard.compact()
        assert shard.index.ntotal == 0
        assert_shard_matches_oracle(shard, oracle, q)
        # the emptied shard accepts new documents again
        vecs = rng.normal(size=(5, DIM)).astype(np.float32)
        ids = oracle.insert(vecs)
        shard.insert(vecs, ids)
        assert_shard_matches_oracle(shard, oracle, q)


class TestConcurrentMutation:
    """Interleaved-thread races: the equivalence contract must hold not just
    for sequential schedules but when mutations, searches, and compactions
    genuinely overlap in time."""

    def test_mutation_during_compaction_blocks_and_survives(self, monkeypatch):
        # Freeze a compaction inside its rebuild window (after the fresh
        # index is warmed, before the swap) and fire an insert + a delete at
        # the shard. Both must block on the mutation lock until the swap —
        # the unserialized version let them update the pre-swap state, which
        # the swap then silently discarded (lost inserts, resurrected
        # deletes).
        rng = np.random.default_rng(20)
        base = rng.normal(size=(40, DIM)).astype(np.float32)
        shard = build_shard("flat", "l2", base)
        oracle = FlatOracle(shard.index.quantizer, "l2", base)
        seed_vecs = rng.normal(size=(3, DIM)).astype(np.float32)
        shard.insert(seed_vecs, oracle.insert(seed_vecs))

        in_rebuild = threading.Event()
        resume = threading.Event()
        real_warm = IVFIndex.warm_scan_state

        def stalled_warm(index):
            real_warm(index)
            in_rebuild.set()
            assert resume.wait(timeout=10)

        monkeypatch.setattr(IVFIndex, "warm_scan_state", stalled_warm)
        compactor = threading.Thread(target=shard.compact)
        compactor.start()
        assert in_rebuild.wait(timeout=10)

        late_vecs = rng.normal(size=(2, DIM)).astype(np.float32)
        late_ids = oracle.insert(late_vecs)
        oracle.delete([5])
        inserter = threading.Thread(target=shard.insert, args=(late_vecs, late_ids))
        deleter = threading.Thread(target=shard.delete, args=([5],))
        inserter.start()
        deleter.start()
        inserter.join(timeout=0.3)
        deleter.join(timeout=0.3)
        assert inserter.is_alive(), "insert slipped into the rebuild window"
        assert deleter.is_alive(), "delete slipped into the rebuild window"

        resume.set()
        for t in (compactor, inserter, deleter):
            t.join(timeout=10)
            assert not t.is_alive()

        queries = rng.normal(size=(3, DIM)).astype(np.float32)
        assert_shard_matches_oracle(shard, oracle, queries)
        _, got = shard.search(base[5][np.newaxis], K)
        assert 5 not in got  # the late delete stuck
        _, got = shard.search(late_vecs[:1], 3)
        assert late_ids[0] in got  # the late insert stuck
        shard.compact()  # folding the late mutations stays equivalent too
        assert_shard_matches_oracle(shard, oracle, queries)

    def test_search_stays_consistent_under_concurrent_mutation(self):
        # Hammer searches while another thread appends delta rows and
        # periodically compacts. Every search must see one point-in-time cut:
        # the unsnapshotted version could scan delta rows past its id
        # snapshot (IndexError / wrong global ids) or mix a post-compaction
        # sealed index with pre-compaction delta state.
        rng = np.random.default_rng(21)
        base = rng.normal(size=(48, DIM)).astype(np.float32)
        shard = build_shard("sq8", "l2", base)
        oracle = FlatOracle(shard.index.quantizer, "l2", base)
        queries = rng.normal(size=(3, DIM)).astype(np.float32)
        inserted: list = []
        failures: list = []

        def mutator():
            try:
                r = np.random.default_rng(22)
                next_id = len(base)
                for step in range(50):
                    vecs = r.normal(size=(2, DIM)).astype(np.float32)
                    shard.insert(
                        vecs, np.arange(next_id, next_id + 2, dtype=np.int64)
                    )
                    inserted.append(vecs)
                    next_id += 2
                    if step % 10 == 9:
                        shard.compact()
            except Exception as exc:  # pragma: no cover - the failure signal
                failures.append(exc)

        worker = threading.Thread(target=mutator)
        worker.start()
        max_id = len(base) + 2 * 50
        while worker.is_alive():
            dists, gids = shard.search(queries, K)
            # The 48 sealed rows are always live, so top-10 must come back
            # full with in-range ids at every instant.
            assert np.isfinite(dists).all()
            assert (gids >= 0).all() and (gids < max_id).all()
        worker.join()
        assert not failures, failures
        for vecs in inserted:
            oracle.insert(vecs)
        assert_shard_matches_oracle(shard, oracle, queries)


class TestWorkerModeParity:
    """Thread and process deep-search paths must agree under mutation."""

    def test_thread_and_process_bit_identical_after_mutation(self):
        from repro.core.clustering import cluster_datastore
        from repro.core.config import HermesConfig
        from repro.core.hierarchical import HermesSearcher

        from repro.datastore.embeddings import make_corpus

        corpus = make_corpus(400, n_topics=4, dim=DIM, seed=9)
        config = HermesConfig(n_clusters=2, clusters_to_search=2, nlist=4)
        datastore = cluster_datastore(corpus.embeddings, config)
        rng = np.random.default_rng(10)
        fresh = rng.normal(size=(12, DIM)).astype(np.float32)
        datastore.add_documents(fresh)
        datastore.delete_documents(rng.choice(400, size=8, replace=False))
        queries = rng.normal(size=(6, DIM)).astype(np.float32)

        threaded = HermesSearcher(datastore, config=config)
        base = threaded.search(queries, k=5)
        with HermesSearcher(
            datastore, config=config, workers_mode="process"
        ) as searcher:
            result = searcher.search(queries, k=5)
            np.testing.assert_array_equal(base.ids, result.ids)
            np.testing.assert_array_equal(base.distances, result.distances)

            # Compaction bumps every mutated shard's generation; the process
            # pool must rebuild its exported view and still agree.
            generations = [s.generation for s in datastore.shards]
            assert datastore.compact() > 0
            assert [s.generation for s in datastore.shards] != generations
            compacted = threaded.search(queries, k=5)
            np.testing.assert_array_equal(base.ids, compacted.ids)
            reloaded = searcher.search(queries, k=5)
            np.testing.assert_array_equal(compacted.ids, reloaded.ids)
            np.testing.assert_array_equal(compacted.distances, reloaded.distances)
        threaded.close()
