"""Process-parallel shard fan-out: identical results, crash-not-hang.

The process pool must be a pure transport change: results bit-identical to
the in-process thread path (workers rebuild shard state from shared-memory
views of the *warmed* parent arrays, so the radius reorder happens exactly
once, in the parent). A SIGKILLed worker must surface as ShardCrashedError
promptly — never a hang — and a broken pool must refuse further use.

Spawned workers re-import this module, so everything at module scope must
stay import-safe (pytest files are; interactive stdin is not).
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.ann.ivf import IVFIndex
from repro.ann.parallel import ProcessShardPool
from repro.ann.quantization import make_quantizer
from repro.core.clustering import IndexShard
from repro.core.errors import ShardCrashedError

DIM = 24


def _build_shards(schemes):
    rng = np.random.default_rng(2)
    data = rng.normal(size=(300 * len(schemes), DIM)).astype(np.float32)
    shards = []
    for sid, scheme in enumerate(schemes):
        lo, hi = sid * 300, (sid + 1) * 300
        index = IVFIndex(DIM, nlist=8, nprobe=4, quantizer=make_quantizer(scheme, DIM))
        index.train(data[lo:hi])
        index.add(data[lo:hi])
        shards.append(
            IndexShard(
                sid, index, np.arange(lo, hi, dtype=np.int64), data[lo:hi].mean(0)
            )
        )
    return shards


@pytest.fixture(scope="module")
def queries():
    return np.random.default_rng(9).normal(size=(8, DIM)).astype(np.float32)


class TestBitIdentical:
    def test_process_matches_thread_for_every_codec(self, queries):
        # flat exercises the dense path, pq4/opq4 the streaming pruned scan.
        shards = _build_shards(("flat", "sq8", "pq4", "opq4"))
        with ProcessShardPool(shards, workers=2) as pool:
            assert pool.worker_pids()  # spawned on demand: at least one is up
            for shard in shards:
                td, ti = shard.search(queries, 5)
                pd_, pi_ = pool.search(shard.shard_id, queries, 5)
                np.testing.assert_array_equal(ti, pi_)
                np.testing.assert_array_equal(td, pd_)
        # after close the pool refuses work rather than hanging
        with pytest.raises(RuntimeError):
            pool.search(0, queries, 5)


class TestCrashSemantics:
    def test_worker_kill_raises_shard_crashed_not_hang(self, queries):
        shards = _build_shards(("sq8",))
        pool = ProcessShardPool(shards, workers=1)
        try:
            caught = {}

            def do_search():
                try:
                    pool.search(0, queries, 5, chaos_delay_s=5.0)
                except ShardCrashedError as err:
                    caught["err"] = err

            thread = threading.Thread(target=do_search)
            thread.start()
            time.sleep(0.5)  # let the worker enter the delayed search
            for pid in pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            thread.join(timeout=30)
            assert not thread.is_alive(), "search hung after worker SIGKILL"
            assert isinstance(caught.get("err"), ShardCrashedError)
            # a broken pool fails fast on reuse instead of resurrecting
            with pytest.raises(ShardCrashedError):
                pool.search(0, queries, 5)
        finally:
            pool.close()
