"""Equivalence of the optimised IVF scan against the reference slow path.

The batched/compacted/ADC search engine must return *exactly* the ids the
pre-optimisation per-query path returns (distances may differ only by
float32 accumulation noise). This suite sweeps metrics, quantizers, probe
depths and batch shapes, plus the structural edge cases: empty cells,
k larger than the candidate pool, and forced non-ADC kernels.
"""

import numpy as np
import pytest

from repro.ann.ivf import IVFIndex
from repro.ann.quantization import make_quantizer

DIM = 24
SCHEMES = ["flat", "sq8", "sq4", "pq8", "opq8"]
METRICS = ["l2", "ip"]


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    centers = rng.normal(scale=4, size=(10, DIM))
    topic = rng.integers(0, 10, size=1200)
    return (centers[topic] + rng.normal(size=(1200, DIM))).astype(np.float32)


@pytest.fixture(scope="module")
def queries(data):
    rng = np.random.default_rng(8)
    picks = rng.choice(len(data), 12, replace=False)
    return (data[picks] + rng.normal(scale=0.05, size=(12, DIM))).astype(np.float32)


@pytest.fixture(scope="module")
def indexes(data):
    built = {}
    for scheme in SCHEMES:
        for metric in METRICS:
            index = IVFIndex(
                DIM, metric, nlist=16, quantizer=make_quantizer(scheme, DIM)
            )
            index.train(data)
            index.add(data)
            built[(scheme, metric)] = index
    return built


def assert_matches_reference(index, queries, k, nprobe, **kwargs):
    ref_d, ref_i = index.search_reference(queries, k, nprobe=nprobe)
    fast_d, fast_i = index.search(queries, k, nprobe=nprobe, **kwargs)
    np.testing.assert_array_equal(ref_i, fast_i)
    finite = np.isfinite(ref_d)
    np.testing.assert_array_equal(finite, np.isfinite(fast_d))
    # ids must match exactly; distances only up to fp32 reassociation noise.
    np.testing.assert_allclose(
        ref_d[finite], fast_d[finite], rtol=1e-3, atol=5e-3
    )


@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("nprobe", [1, 4, 16])
@pytest.mark.parametrize("prune", [None, True, False])
def test_fast_path_matches_reference(indexes, queries, scheme, metric, nprobe, prune):
    assert_matches_reference(
        indexes[(scheme, metric)], queries, 5, nprobe, prune=prune
    )


@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_adc_matches_decode_kernel(indexes, queries, scheme, metric):
    """Forced decode-then-GEMM and ADC must rank identically."""
    index = indexes[(scheme, metric)]
    d_adc, i_adc = index.search(queries, 5, nprobe=4, use_adc=True)
    d_dec, i_dec = index.search(queries, 5, nprobe=4, use_adc=False)
    np.testing.assert_array_equal(i_adc, i_dec)
    np.testing.assert_allclose(d_adc, d_dec, rtol=1e-3, atol=5e-3)


@pytest.mark.parametrize("scheme", ["flat", "sq8"])
def test_batch_matches_single_query_loop(indexes, queries, scheme):
    """Cell-major batching must not couple queries to each other."""
    index = indexes[(scheme, "l2")]
    batch_d, batch_i = index.search(queries, 5, nprobe=4)
    for qi in range(len(queries)):
        d, i = index.search(queries[qi : qi + 1], 5, nprobe=4)
        np.testing.assert_array_equal(batch_i[qi], i[0])
        # batch shape can flip the scan strategy (dense vs sparse), whose
        # kernels reassociate the fp32 reductions differently.
        np.testing.assert_allclose(batch_d[qi], d[0], rtol=1e-3, atol=5e-3)


@pytest.mark.parametrize("metric", METRICS)
def test_empty_cells_are_skipped(data, queries, metric):
    """Sparse population leaves cells empty; both paths must tolerate it."""
    index = IVFIndex(DIM, metric, nlist=16, quantizer=make_quantizer("sq8", DIM))
    index.train(data)
    index.add(data[:40])  # 16 cells, 40 vectors: several cells stay empty
    assert (index.list_sizes() == 0).any()
    assert_matches_reference(index, queries, 5, 16)


@pytest.mark.parametrize("scheme", ["flat", "sq8", "pq8"])
def test_k_exceeding_candidates_pads(data, queries, scheme):
    """k beyond the probed candidate pool pads with inf / -1 identically."""
    index = IVFIndex(DIM, "l2", nlist=16, quantizer=make_quantizer(scheme, DIM))
    index.train(data)
    index.add(data[:30])
    k = 50
    ref_d, ref_i = index.search_reference(queries, k, nprobe=2)
    fast_d, fast_i = index.search(queries, k, nprobe=2)
    np.testing.assert_array_equal(ref_i, fast_i)
    assert (fast_i == -1).any()
    assert np.isinf(fast_d[fast_i == -1]).all()


def test_dense_and_sparse_strategies_agree(data, queries):
    """Force both scan strategies on the same index and compare."""
    index = IVFIndex(DIM, "l2", nlist=16, quantizer=make_quantizer("sq8", DIM))
    index.train(data)
    index.add(data)
    advantage = index.quantizer.adc_dense_advantage
    try:
        index.quantizer.adc_dense_advantage = float("inf")  # always dense
        dense = index.search(queries, 5, nprobe=4)
        index.quantizer.adc_dense_advantage = 0.0  # always sparse
        sparse = index.search(queries, 5, nprobe=4)
    finally:
        index.quantizer.adc_dense_advantage = advantage
    np.testing.assert_array_equal(dense[1], sparse[1])
    np.testing.assert_allclose(dense[0], sparse[0], rtol=1e-3, atol=5e-3)


def test_search_after_incremental_add_matches_reference(data, queries):
    index = IVFIndex(DIM, "l2", nlist=16, quantizer=make_quantizer("sq8", DIM))
    index.train(data)
    index.add(data[:600])
    index.search(queries, 5)  # compact the first half
    index.add(data[600:])  # dirty again
    assert_matches_reference(index, queries, 5, 8)
