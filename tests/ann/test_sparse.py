"""Tests for the BM25 sparse index and hybrid fusion."""

import numpy as np
import pytest

from repro.ann.flat import FlatIndex
from repro.ann.sparse import BM25Index, HybridRetriever, reciprocal_rank_fusion


def doc(*tokens):
    return np.array(tokens, dtype=np.int64)


@pytest.fixture()
def index():
    idx = BM25Index()
    idx.add([
        doc(1, 2, 3, 3),        # 0: about 3
        doc(1, 2, 4),           # 1: about 4
        doc(5, 5, 5, 6),        # 2: about 5
        doc(1, 2, 7, 7, 7, 7),  # 3: about 7, longer
    ])
    return idx


class TestBM25:
    def test_ids_contiguous(self):
        idx = BM25Index()
        ids = idx.add([doc(1), doc(2)])
        assert list(ids) == [0, 1]
        ids = idx.add([doc(3)])
        assert list(ids) == [2]

    def test_exact_term_match_wins(self, index):
        result = index.search(doc(5), 2)
        assert result.ids[0] == 2

    def test_rare_term_outweighs_common(self, index):
        # Token 1 appears in 3 docs (common), token 4 in 1 (rare).
        result = index.search(doc(1, 4), 1)
        assert result.ids[0] == 1

    def test_term_frequency_saturates(self, index):
        # Doc 3 has tf=4 for token 7; still ranked first but the score is
        # bounded by (k1+1) * idf.
        result = index.search(doc(7), 1)
        assert result.ids[0] == 3
        idf_bound = (index.k1 + 1) * index._idf(7)
        assert result.scores[0] <= idf_bound * 1.01

    def test_unknown_token_scores_nothing(self, index):
        result = index.search(doc(999), 3)
        assert (result.ids == -1).all()

    def test_padding_when_few_matches(self, index):
        result = index.search(doc(6), 3)
        assert result.ids[0] == 2
        assert (result.ids[1:] == -1).all()

    def test_batch_shape(self, index):
        result = index.search_batch([doc(1), doc(5)], 2)
        assert result.ids.shape == (2, 2)

    def test_empty_query_rejected(self, index):
        with pytest.raises(ValueError):
            index.search(doc(), 1)

    def test_empty_document_rejected(self):
        with pytest.raises(ValueError):
            BM25Index().add([doc()])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BM25Index(k1=0)
        with pytest.raises(ValueError):
            BM25Index(b=1.5)


class TestRRF:
    def test_agreement_ranks_first(self):
        fused = reciprocal_rank_fusion(
            [np.array([1, 2, 3]), np.array([1, 3, 2])], 3
        )
        assert fused[0] == 1

    def test_single_list_passthrough_order(self):
        fused = reciprocal_rank_fusion([np.array([5, 9, 2])], 3)
        assert list(fused) == [5, 9, 2]

    def test_padding_ignored(self):
        fused = reciprocal_rank_fusion([np.array([4, -1, -1])], 3)
        assert fused[0] == 4
        assert (fused[1:] == -1).all()

    def test_rrf_k_validated(self):
        with pytest.raises(ValueError):
            reciprocal_rank_fusion([np.array([1])], 1, rrf_k=0)


class TestHybrid:
    @pytest.fixture()
    def hybrid(self):
        rng = np.random.default_rng(0)
        embeddings = rng.normal(size=(4, 8)).astype(np.float32)
        dense = FlatIndex(8)
        dense.add(embeddings)
        sparse = BM25Index()
        sparse.add([doc(1, 2), doc(3, 4), doc(5, 6), doc(7, 8)])
        return embeddings, HybridRetriever(dense, sparse, candidates=4)

    def test_fused_search_shape(self, hybrid):
        embeddings, retriever = hybrid
        ids = retriever.search(embeddings[:2], [doc(1), doc(3)], 3)
        assert ids.shape == (2, 3)

    def test_agreeing_document_ranks_first(self, hybrid):
        embeddings, retriever = hybrid
        # Query 0's embedding is exactly doc 0's and its tokens match doc 0.
        ids = retriever.search(embeddings[:1], [doc(1, 2)], 2)
        assert ids[0, 0] == 0

    def test_mismatched_coverage_rejected(self):
        dense = FlatIndex(4)
        dense.add(np.zeros((2, 4), dtype=np.float32))
        sparse = BM25Index()
        sparse.add([doc(1)])
        with pytest.raises(ValueError, match="same documents"):
            HybridRetriever(dense, sparse)

    def test_query_count_mismatch_rejected(self, hybrid):
        embeddings, retriever = hybrid
        with pytest.raises(ValueError):
            retriever.search(embeddings[:2], [doc(1)], 2)


class TestZScoreFusion:
    def test_confident_retriever_outvotes_indifferent(self):
        from repro.ann.sparse import zscore_fusion

        # Retriever A: flat scores (no confidence); B: one standout.
        a = (np.array([1.0, 0.99, 0.98]), np.array([10, 11, 12]))
        b = (np.array([9.0, 1.0, 0.9]), np.array([20, 11, 12]))
        fused = zscore_fusion([a, b], 2)
        assert fused[0] == 20

    def test_empty_retriever_ignored(self):
        from repro.ann.sparse import zscore_fusion

        a = (np.array([2.0, 1.0]), np.array([1, 2]))
        b = (np.array([-np.inf, -np.inf]), np.array([-1, -1]))
        fused = zscore_fusion([a, b], 2)
        assert list(fused) == [1, 2]

    def test_agreement_accumulates(self):
        from repro.ann.sparse import zscore_fusion

        a = (np.array([2.0, 1.0, 0.0]), np.array([5, 6, 7]))
        b = (np.array([2.0, 1.0, 0.0]), np.array([5, 7, 6]))
        fused = zscore_fusion([a, b], 1)
        assert fused[0] == 5

    def test_zero_variance_contributes_nothing(self):
        from repro.ann.sparse import zscore_fusion

        a = (np.array([1.0, 1.0]), np.array([1, 2]))
        b = (np.array([3.0, 0.0]), np.array([9, 1]))
        fused = zscore_fusion([a, b], 1)
        assert fused[0] == 9

    def test_rrf_mode_still_available(self):
        from repro.ann.flat import FlatIndex
        from repro.ann.sparse import BM25Index, HybridRetriever

        rng = np.random.default_rng(1)
        emb = rng.normal(size=(3, 4)).astype(np.float32)
        dense = FlatIndex(4)
        dense.add(emb)
        sparse = BM25Index()
        sparse.add([doc(1), doc(2), doc(3)])
        hybrid = HybridRetriever(dense, sparse, candidates=3, fusion="rrf")
        ids = hybrid.search(emb[:1], [doc(1)], 2)
        assert ids.shape == (1, 2)

    def test_unknown_fusion_rejected(self):
        from repro.ann.flat import FlatIndex
        from repro.ann.sparse import BM25Index, HybridRetriever

        dense = FlatIndex(4)
        dense.add(np.zeros((1, 4), dtype=np.float32))
        sparse = BM25Index()
        sparse.add([doc(1)])
        with pytest.raises(ValueError, match="fusion"):
            HybridRetriever(dense, sparse, fusion="borda")
