"""Tests for adaptive early-termination IVF search."""

import numpy as np
import pytest

from repro.ann.early_termination import search_with_early_termination
from repro.ann.flat import FlatIndex
from repro.ann.ivf import IVFIndex
from repro.metrics.recall import recall_at_k


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    centers = rng.normal(scale=5, size=(10, 24))
    data = np.concatenate(
        [centers[i] + rng.normal(size=(120, 24)) for i in range(10)]
    ).astype(np.float32)
    index = IVFIndex(24, nlist=32, nprobe=32)
    index.train(data)
    index.add(data)
    flat = FlatIndex(24)
    flat.add(data)
    queries = data[rng.choice(len(data), 16, replace=False)] + 0.01
    _, truth = flat.search(queries, 5)
    return index, queries, truth


class TestCorrectness:
    def test_matches_full_search_with_infinite_patience(self, setup):
        index, queries, truth = setup
        result = search_with_early_termination(
            index, queries, 5, max_nprobe=32, patience=32
        )
        _, full = index.search(queries, 5, nprobe=32)
        assert np.array_equal(result.ids, full)

    def test_high_recall_with_moderate_patience(self, setup):
        index, queries, truth = setup
        result = search_with_early_termination(
            index, queries, 5, max_nprobe=32, patience=4
        )
        assert recall_at_k(result.ids, truth) > 0.9

    def test_results_sorted(self, setup):
        index, queries, _ = setup
        result = search_with_early_termination(index, queries, 5, patience=3)
        finite = np.where(np.isfinite(result.distances), result.distances, np.inf)
        assert (np.diff(finite, axis=1) >= -1e-6).all()


class TestEffort:
    def test_early_termination_probes_fewer_cells(self, setup):
        index, queries, _ = setup
        eager = search_with_early_termination(
            index, queries, 5, max_nprobe=32, patience=2
        )
        assert eager.mean_cells_probed < 32

    def test_patience_controls_effort(self, setup):
        index, queries, _ = setup
        impatient = search_with_early_termination(
            index, queries, 5, max_nprobe=32, patience=2
        )
        patient = search_with_early_termination(
            index, queries, 5, max_nprobe=32, patience=16
        )
        assert impatient.mean_cells_probed <= patient.mean_cells_probed

    def test_pruning_cuts_effort_further(self, setup):
        index, queries, _ = setup
        unpruned = search_with_early_termination(
            index, queries, 5, max_nprobe=32, patience=32
        )
        pruned = search_with_early_termination(
            index, queries, 5, max_nprobe=32, patience=32, prune_ratio=1.5
        )
        assert pruned.mean_cells_probed <= unpruned.mean_cells_probed

    def test_effort_vs_recall_tradeoff_monotone(self, setup):
        index, queries, truth = setup
        recalls, efforts = [], []
        for patience in (1, 4, 16):
            result = search_with_early_termination(
                index, queries, 5, max_nprobe=32, patience=patience
            )
            recalls.append(recall_at_k(result.ids, truth))
            efforts.append(result.mean_cells_probed)
        assert efforts == sorted(efforts)
        assert recalls[-1] >= recalls[0]


class TestValidation:
    def test_bad_patience(self, setup):
        index, queries, _ = setup
        with pytest.raises(ValueError):
            search_with_early_termination(index, queries, 5, patience=0)

    def test_bad_prune_ratio(self, setup):
        index, queries, _ = setup
        with pytest.raises(ValueError):
            search_with_early_termination(index, queries, 5, prune_ratio=0.5)

    def test_untrained_rejected(self):
        with pytest.raises(RuntimeError):
            search_with_early_termination(
                IVFIndex(8, nlist=4), np.zeros((1, 8), dtype=np.float32), 3
            )
