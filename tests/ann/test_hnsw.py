"""Tests for the HNSW graph index."""

import numpy as np
import pytest

from repro.ann.flat import FlatIndex
from repro.ann.hnsw import HNSWIndex
from repro.metrics.recall import recall_at_k


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    return rng.normal(size=(600, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def built(data):
    index = HNSWIndex(16, m=8, ef_construction=48, ef_search=48, seed=0)
    index.add(data)
    return index


@pytest.fixture(scope="module")
def truth(data):
    flat = FlatIndex(16)
    flat.add(data)
    rng = np.random.default_rng(1)
    queries = data[rng.choice(len(data), 20, replace=False)]
    return queries, flat.search(queries, 5)[1]


class TestConstruction:
    def test_entry_point_set(self, built):
        assert built._entry >= 0
        assert built._max_level >= 0

    def test_layer0_degree_bounded(self, built):
        for links in built._links:
            assert len(links[0]) <= built.m0

    def test_upper_layer_degree_bounded(self, built):
        for links in built._links:
            for level_links in links[1:]:
                assert len(level_links) <= built.m

    def test_links_are_valid_nodes(self, built):
        n = built.ntotal
        for links in built._links:
            for level_links in links:
                assert all(0 <= nb < n for nb in level_links)

    def test_rejects_tiny_m(self):
        with pytest.raises(ValueError, match="m must be"):
            HNSWIndex(8, m=1)


class TestSearch:
    def test_high_recall_at_ef48(self, built, truth):
        queries, expected = truth
        _, ids = built.search(queries, 5)
        assert recall_at_k(ids, expected) > 0.9

    def test_recall_improves_with_ef(self, built, truth):
        queries, expected = truth
        _, low = built.search(queries, 5, ef=8)
        _, high = built.search(queries, 5, ef=96)
        assert recall_at_k(high, expected) >= recall_at_k(low, expected)

    def test_self_query_finds_self(self, built, data):
        _, ids = built.search(data[:5], 1, ef=64)
        assert list(ids[:, 0]) == [0, 1, 2, 3, 4]

    def test_empty_index_pads(self):
        index = HNSWIndex(8)
        dists, ids = index.search(np.zeros((1, 8), dtype=np.float32), 3)
        assert (ids == -1).all()

    def test_single_element_index(self):
        index = HNSWIndex(4, m=4)
        index.add(np.ones((1, 4), dtype=np.float32))
        _, ids = index.search(np.ones((1, 4), dtype=np.float32), 1)
        assert ids[0, 0] == 0

    def test_results_sorted_by_distance(self, built, data):
        dists, _ = built.search(data[:3], 5)
        for row in dists:
            finite = row[np.isfinite(row)]
            assert (np.diff(finite) >= -1e-6).all()


class TestMemory:
    def test_memory_exceeds_raw_vectors(self, built):
        # The figure-4 point: the graph links cost real memory on top of the
        # raw fp32 payload.
        raw = built.ntotal * built.dim * 4
        assert built.memory_bytes() > raw

    def test_memory_grows_with_m(self, data):
        small = HNSWIndex(16, m=4, ef_construction=24, seed=0)
        small.add(data[:200])
        big = HNSWIndex(16, m=16, ef_construction=24, seed=0)
        big.add(data[:200])
        assert big.memory_bytes() > small.memory_bytes()


class TestNeighbourSelection:
    @staticmethod
    def _reference_select(index, candidates, m):
        """Algorithm 4 with per-candidate distance calls (pre-vectorization)."""
        selected = []
        for dist, cand in candidates:
            if len(selected) >= m:
                break
            if not selected or all(
                dist <= float(index._distance(index._vectors[cand], [s])[0])
                for s in selected
            ):
                selected.append(cand)
        if len(selected) < m:
            chosen = set(selected)
            for _, cand in candidates:
                if len(selected) >= m:
                    break
                if cand not in chosen:
                    selected.append(cand)
                    chosen.add(cand)
        return selected

    def test_matches_reference_randomized(self, built, data):
        rng = np.random.default_rng(3)
        for trial in range(10):
            query = data[rng.integers(len(data))]
            n_cand = int(rng.integers(2, 24))
            ids = rng.choice(built.ntotal, size=n_cand, replace=False)
            dists = built._distance(query, ids)
            candidates = sorted(zip(dists.tolist(), ids.tolist()))
            m = int(rng.integers(1, 12))
            fast = built._select_neighbours(candidates, m)
            ref = self._reference_select(built, candidates, m)
            assert fast == ref, trial

    def test_single_candidate(self, built):
        assert built._select_neighbours([(0.5, 7)], 4) == [7]
        assert built._select_neighbours([], 4) == []
