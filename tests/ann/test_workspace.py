"""The scratch-buffer arena: reuse, growth, and stats draining."""

import numpy as np

from repro.ann.workspace import Workspace


class TestTake:
    def test_same_key_reuses_backing_buffer(self):
        ws = Workspace()
        a = ws.take("x", (4, 8))
        b = ws.take("x", (4, 8))
        assert a.base is b.base or a.base is b  # same backing allocation
        assert ws.hits == 1 and ws.misses == 1

    def test_smaller_request_is_a_view_not_a_realloc(self):
        ws = Workspace()
        ws.take("x", (100,))
        ws.take("x", (10,))
        assert ws.misses == 1 and ws.hits == 1

    def test_growth_is_geometric(self):
        ws = Workspace()
        ws.take("x", (100,))
        ws.take("x", (101,))  # grows to >= 200, not 101
        assert ws._buffers["x"].size >= 200
        ws.take("x", (150,))
        assert ws.misses == 2 and ws.hits == 1

    def test_dtype_change_reallocates(self):
        ws = Workspace()
        ws.take("x", (8,), dtype=np.float32)
        out = ws.take("x", (8,), dtype=np.int64)
        assert out.dtype == np.int64
        assert ws.misses == 2

    def test_fill_initialises_view(self):
        ws = Workspace()
        ws.take("x", (4,))[...] = 7.0
        out = ws.take("x", (4,), fill=np.inf)
        assert np.isinf(out).all()

    def test_shapes_and_scalar(self):
        ws = Workspace()
        assert ws.take("m", (2, 3, 4)).shape == (2, 3, 4)
        assert ws.take("s", ()).shape == ()


class TestHousekeeping:
    def test_nbytes_and_clear(self):
        ws = Workspace()
        ws.take("a", (256,), dtype=np.float32)
        assert ws.nbytes() >= 1024
        ws.clear()
        assert ws.nbytes() == 0

    def test_flush_stats_drains_into_registry(self):
        from repro.obs.metrics import get_registry

        registry = get_registry()
        hits = registry.counter("workspace_hits_total", "test")
        misses = registry.counter("workspace_misses_total", "test")
        h0, m0 = hits.total(), misses.total()
        ws = Workspace()
        ws.take("x", (4,))
        ws.take("x", (4,))
        ws.flush_stats()
        assert hits.total() == h0 + 1
        assert misses.total() == m0 + 1
        assert ws.hits == 0 and ws.misses == 0
        ws.flush_stats()  # nothing accumulated: no-op
        assert hits.total() == h0 + 1


class TestSearchIntegration:
    def test_steady_state_searches_allocate_nothing_new(self):
        from repro.ann.ivf import IVFIndex
        from repro.ann.quantization import make_quantizer

        rng = np.random.default_rng(0)
        data = rng.normal(size=(600, 16)).astype(np.float32)
        q = rng.normal(size=(8, 16)).astype(np.float32)
        index = IVFIndex(16, nlist=8, nprobe=4, quantizer=make_quantizer("pq4", 16))
        index.train(data)
        index.add(data)
        index.search(q, 5)
        index.search(q, 5)  # shapes seen: arena fully grown
        # search() drains the arena stats into the registry each call, so
        # steady state shows up there as hits without new misses.
        from repro.obs.metrics import get_registry

        registry = get_registry()
        hits = registry.counter("workspace_hits_total", "test")
        misses = registry.counter("workspace_misses_total", "test")
        h0, m0 = hits.total(), misses.total()
        index.search(q, 5)
        assert misses.total() == m0  # zero new allocations steady-state
        assert hits.total() > h0
