"""Tests for the IVF index."""

import numpy as np
import pytest

from repro.ann.base import build_index
from repro.ann.flat import FlatIndex
from repro.ann.ivf import IVFIndex, default_nlist
from repro.ann.quantization import make_quantizer
from repro.metrics.recall import recall_at_k


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    centers = rng.normal(scale=4, size=(8, 24))
    return np.concatenate(
        [centers[i] + rng.normal(size=(150, 24)) for i in range(8)]
    ).astype(np.float32)


@pytest.fixture(scope="module")
def queries(data):
    rng = np.random.default_rng(1)
    return data[rng.choice(len(data), 16, replace=False)] + 0.01


@pytest.fixture(scope="module")
def truth(data, queries):
    flat = FlatIndex(24)
    flat.add(data)
    return flat.search(queries, 5)[1]


def trained_ivf(data, **kwargs):
    index = IVFIndex(24, **kwargs)
    index.train(data)
    index.add(data)
    return index


class TestDefaults:
    def test_default_nlist_sqrt(self):
        assert default_nlist(10000) == 100

    def test_default_nlist_minimum_one(self):
        assert default_nlist(0) == 1

    def test_nlist_inferred_at_train(self, data):
        index = trained_ivf(data)
        assert index.nlist == default_nlist(len(data))


class TestLifecycle:
    def test_search_before_train_raises(self, data):
        with pytest.raises(RuntimeError, match="train"):
            IVFIndex(24).search(data[:1], 1)

    def test_add_before_train_raises(self, data):
        with pytest.raises(RuntimeError, match="train"):
            IVFIndex(24).add(data)

    def test_train_smaller_than_nlist_raises(self):
        index = IVFIndex(4, nlist=100)
        with pytest.raises(ValueError, match="smaller than nlist"):
            index.train(np.zeros((10, 4), dtype=np.float32))

    def test_list_sizes_sum_to_ntotal(self, data):
        index = trained_ivf(data, nlist=16)
        assert index.list_sizes().sum() == index.ntotal == len(data)

    def test_incremental_add_preserves_ids(self, data):
        index = IVFIndex(24, nlist=16, nprobe=16)
        index.train(data)
        index.add(data[:100])
        ids = index.add(data[100:200])
        assert ids[0] == 100
        _, found = index.search(data[150:151], 1)
        assert found[0, 0] == 150


class TestSearchQuality:
    def test_full_probe_matches_exact(self, data, queries, truth):
        index = trained_ivf(data, nlist=16)
        _, ids = index.search(queries, 5, nprobe=16)
        assert recall_at_k(ids, truth) > 0.99

    def test_recall_increases_with_nprobe(self, data, queries, truth):
        index = trained_ivf(data, nlist=32)
        recalls = []
        for nprobe in (1, 4, 16, 32):
            _, ids = index.search(queries, 5, nprobe=nprobe)
            recalls.append(recall_at_k(ids, truth))
        assert recalls == sorted(recalls)
        assert recalls[-1] > recalls[0]

    def test_nprobe_override_beats_default(self, data, queries, truth):
        index = trained_ivf(data, nlist=32, nprobe=1)
        _, low = index.search(queries, 5)
        _, high = index.search(queries, 5, nprobe=32)
        assert recall_at_k(high, truth) >= recall_at_k(low, truth)

    def test_sq8_payload_keeps_recall(self, data, queries, truth):
        index = trained_ivf(
            data, nlist=16, quantizer=make_quantizer("sq8", 24)
        )
        _, ids = index.search(queries, 5, nprobe=16)
        assert recall_at_k(ids, truth) > 0.95

    def test_k_larger_than_candidates_pads(self, data):
        index = trained_ivf(data, nlist=16)
        dists, ids = index.search(data[:1], len(data) + 10, nprobe=1)
        assert (ids[0] == -1).any()

    def test_invalid_nprobe_rejected(self, data):
        index = trained_ivf(data, nlist=16)
        with pytest.raises(ValueError):
            index.search(data[:1], 1, nprobe=0)


class TestCompaction:
    def test_add_marks_index_dirty(self, data):
        index = IVFIndex(24, nlist=16)
        index.train(data)
        index.add(data)
        assert not index.is_compacted

    def test_first_search_compacts(self, data):
        index = trained_ivf(data, nlist=16)
        index.search(data[:2], 3)
        assert index.is_compacted
        assert index.compactions == 1

    def test_repeated_search_does_not_recompact(self, data):
        """Steady-state searches must not rebuild the CSR arrays."""
        index = trained_ivf(data, nlist=16)
        index.search(data[:2], 3)
        count = index.compactions
        for _ in range(5):
            index.search(data[:2], 3, nprobe=4)
        assert index.compactions == count

    def test_add_then_search_compacts_exactly_once_more(self, data):
        index = trained_ivf(data, nlist=16)
        index.search(data[:2], 3)
        index.add(data[:50])
        assert not index.is_compacted
        index.search(data[:2], 3)
        index.search(data[:2], 3)
        assert index.compactions == 2

    def test_compact_is_idempotent(self, data):
        index = trained_ivf(data, nlist=16)
        index.compact()
        index.compact()
        assert index.compactions == 1

    def test_incremental_adds_match_single_add(self, data):
        whole = trained_ivf(data, nlist=16, nprobe=16)
        split = IVFIndex(24, nlist=16, nprobe=16)
        split.train(data)
        split.add(data[:500])
        split.search(data[:2], 3)  # compact mid-stream
        split.add(data[500:])
        d1, i1 = whole.search(data[:8], 5)
        d2, i2 = split.search(data[:8], 5)
        np.testing.assert_array_equal(i1, i2)
        np.testing.assert_allclose(d1, d2, rtol=1e-4, atol=1e-4)

    def test_cell_codes_are_contiguous_views(self, data):
        index = trained_ivf(data, nlist=16)
        codes, ids = index.cell_codes(0)
        assert codes.base is index._codes or len(codes) == 0
        assert len(codes) == len(ids)


class TestMemory:
    def test_sq8_smaller_than_flat_payload(self, data):
        flat_payload = trained_ivf(data, nlist=16)
        sq8 = trained_ivf(data, nlist=16, quantizer=make_quantizer("sq8", 24))
        assert sq8.memory_bytes() < flat_payload.memory_bytes()

    def test_memory_grows_with_vectors(self, data):
        small = trained_ivf(data[:200], nlist=8)
        large = trained_ivf(data, nlist=8)
        assert large.memory_bytes() > small.memory_bytes()


class TestRegistry:
    @pytest.mark.parametrize("key", ["ivf_flat", "ivf_sq8", "ivf_sq4", "ivf_pq"])
    def test_registered_variants_build(self, key, data):
        index = build_index(key, 24, nlist=16)
        index.train(data)
        index.add(data[:100])
        _, ids = index.search(data[:2], 3, )
        assert ids.shape == (2, 3)
