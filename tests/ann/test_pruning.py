"""The streaming scan's triangle-inequality pruning must be sound.

Pruning is a pure optimisation: the streaming path may skip cells and code
blocks only when they provably cannot enter the top-k, so its results must
match the unpruned reference on every workload — including the adversarial
ones hypothesis likes (duplicated vectors, zero vectors, k larger than any
cell, a single probed cell). Ties are compared distance-wise: the radius
reorder may return a different-but-equidistant id where two *distinct*
vectors tie exactly, so distances (which detect any dropped neighbor) are
the invariant, and exact-id equality is asserted separately where storage
order is preserved (duplicates).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann.ivf import IVFIndex
from repro.ann.pruning import (
    inflate_threshold,
    ip_radius_cut,
    l2_radius_window,
    residual_radii,
)
from repro.ann.quantization import make_quantizer


class TestBoundHelpers:
    def test_residual_radii_never_underestimate(self):
        rng = np.random.default_rng(0)
        decoded = rng.normal(size=(100, 8)).astype(np.float32)
        centroids = rng.normal(size=(100, 8)).astype(np.float32)
        radii = residual_radii(decoded, centroids)
        true = np.linalg.norm(
            decoded.astype(np.float64) - centroids.astype(np.float64), axis=1
        )
        assert (radii.astype(np.float64) >= true).all()

    def test_inflate_threshold_keeps_inf_and_sign(self):
        tau = np.array([np.inf, 0.0, 5.0, -0.01])
        out = inflate_threshold(tau)
        assert np.isinf(out[0])
        assert (out[1:] > tau[1:]).all()

    def test_l2_window_infinite_tau_disables_pruning(self):
        lo, hi = l2_radius_window(np.array([4.0]), np.array([np.inf]))
        assert lo[0] == -np.inf and hi[0] == np.inf

    def test_l2_window_excludes_only_unreachable_radii(self):
        # cd = 100 (|q-c| = 10), tau = 4 (|q-p| <= 2): radii in [8, 12] survive
        lo, hi = l2_radius_window(np.array([100.0]), np.array([4.0]))
        assert lo[0] == pytest.approx(8.0)
        assert hi[0] == pytest.approx(12.0)

    def test_ip_cut_zero_norm_query_is_all_or_nothing(self):
        cut = ip_radius_cut(np.array([1.0, -1.0]), np.array([0.0, 0.0]), np.array([0.0]))
        assert cut[0] == -np.inf  # -q.c = -1 <= tau: everything survives
        assert cut[1] == np.inf  # -q.c = 1 > tau: nothing can beat tau


def _tie_aware_check(ref, fast):
    """Distances must match exactly up to fp noise; any pruned true neighbor
    would surface as a strictly larger fast distance."""
    ref_d, ref_i = ref
    fast_d, fast_i = fast
    finite = np.isfinite(ref_d)
    np.testing.assert_array_equal(finite, np.isfinite(fast_d))
    np.testing.assert_allclose(ref_d[finite], fast_d[finite], rtol=1e-3, atol=5e-3)
    assert ((fast_i >= 0) == finite).all()


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(12, 150),
    dim=st.integers(1, 6).map(lambda h: 2 * h),  # even: pq2 needs m | dim
    k=st.integers(1, 40),
    nlist=st.integers(1, 12),
    nprobe=st.integers(1, 12),
    metric=st.sampled_from(["l2", "ip"]),
    scheme=st.sampled_from(["flat", "sq8", "pq2"]),
    duplicate=st.booleans(),
    zeros=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_pruning_never_drops_a_true_neighbor(
    seed, n, dim, k, nlist, nprobe, metric, scheme, duplicate, zeros
):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, dim)).astype(np.float32)
    if duplicate:  # heavy exact ties across and within cells
        data[n // 2 :] = data[: n - n // 2]
    if zeros:
        data[:: 3] = 0.0
    queries = np.concatenate([data[:3], rng.normal(size=(2, dim)).astype(np.float32)])
    index = IVFIndex(
        dim,
        metric,
        nlist=nlist,
        nprobe=nprobe,
        quantizer=make_quantizer(scheme, dim),
    )
    index.train(data)
    index.add(data)
    ref = index.search_reference(queries, k)
    pruned = index.search(queries, k, prune=True)
    _tie_aware_check(ref, pruned)


class TestDuplicatedVectors:
    """Duplicates keep their insertion order through the radius reorder
    (equal radii + stable sort), so ids must match the reference exactly."""

    @pytest.mark.parametrize("metric", ["l2", "ip"])
    def test_duplicate_ids_match_reference_exactly(self, metric):
        rng = np.random.default_rng(3)
        base = rng.normal(size=(40, 16)).astype(np.float32)
        data = np.concatenate([base] * 4)  # every vector stored 4x
        queries = base[:10] + rng.normal(scale=0.01, size=(10, 16)).astype(np.float32)
        index = IVFIndex(
            16, metric, nlist=6, nprobe=6, quantizer=make_quantizer("flat", 16)
        )
        index.train(data)
        index.add(data)
        ref_d, ref_i = index.search_reference(queries, 9)
        for prune in (False, True):
            d, i = index.search(queries, 9, prune=prune)
            np.testing.assert_array_equal(ref_i, i)
            np.testing.assert_allclose(ref_d, d, rtol=1e-3, atol=5e-3)


class TestPruningState:
    def test_reorder_is_within_cells_only(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(300, 8)).astype(np.float32)
        index = IVFIndex(8, nlist=8, nprobe=4, quantizer=make_quantizer("sq8", 8))
        index.train(data)
        index.add(data)
        index.compact()
        before_cells = index._code_cells.copy()
        before_ids_by_cell = [
            set(index._ids[index._cell_offsets[c] : index._cell_offsets[c + 1]])
            for c in range(index.nlist)
        ]
        index.warm_scan_state()
        np.testing.assert_array_equal(index._code_cells, before_cells)
        for c in range(index.nlist):
            lo, hi = index._cell_offsets[c], index._cell_offsets[c + 1]
            assert set(index._ids[lo:hi]) == before_ids_by_cell[c]
            # radius-ascending within the cell
            radii = index._code_radii[lo:hi]
            assert (np.diff(radii) >= 0).all()

    def test_add_invalidates_radii(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(200, 8)).astype(np.float32)
        index = IVFIndex(8, nlist=4, nprobe=4, quantizer=make_quantizer("flat", 8))
        index.train(data)
        index.add(data)
        index.warm_scan_state()
        assert index._code_radii is not None
        index.add(data[:10])
        d, i = index.search(data[:2], 3, prune=True)  # recomputes lazily
        ref_d, ref_i = index.search_reference(data[:2], 3)
        np.testing.assert_array_equal(ref_i, i)

    def test_counters_increase_on_clustered_corpus(self):
        from repro.obs.metrics import get_registry

        rng = np.random.default_rng(6)
        centers = rng.normal(scale=6.0, size=(8, 16))
        data = (
            centers[rng.integers(0, 8, 2000)] + rng.normal(size=(2000, 16))
        ).astype(np.float32)
        queries = data[:16] + rng.normal(scale=0.05, size=(16, 16)).astype(np.float32)
        index = IVFIndex(16, nlist=16, nprobe=16, quantizer=make_quantizer("pq8", 16))
        index.train(data)
        index.add(data)
        counter = get_registry().counter("ivf_cells_pruned_total", "test")
        before = counter.total()
        index.search(queries, 5, prune=True)
        assert counter.total() > before
