"""Tests for the exact brute-force index."""

import numpy as np
import pytest

from repro.ann.flat import FlatIndex


@pytest.fixture()
def index_and_data():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(200, 16)).astype(np.float32)
    index = FlatIndex(16)
    index.add(data)
    return index, data


class TestLifecycle:
    def test_trained_by_default(self):
        assert FlatIndex(8).is_trained

    def test_add_returns_contiguous_ids(self):
        index = FlatIndex(4)
        first = index.add(np.zeros((3, 4), dtype=np.float32))
        second = index.add(np.ones((2, 4), dtype=np.float32))
        assert list(first) == [0, 1, 2]
        assert list(second) == [3, 4]
        assert index.ntotal == 5

    def test_rejects_wrong_dim(self):
        index = FlatIndex(4)
        with pytest.raises(ValueError, match="dim"):
            index.add(np.zeros((2, 5), dtype=np.float32))

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            FlatIndex(0)


class TestSearch:
    def test_self_query_returns_self_first(self, index_and_data):
        index, data = index_and_data
        _, ids = index.search(data[:10], 1)
        assert list(ids[:, 0]) == list(range(10))

    def test_exactness_vs_numpy(self, index_and_data):
        index, data = index_and_data
        rng = np.random.default_rng(1)
        queries = rng.normal(size=(5, 16)).astype(np.float32)
        _, ids = index.search(queries, 3)
        dists = ((queries[:, None, :] - data[None, :, :]) ** 2).sum(axis=2)
        expected = np.argsort(dists, axis=1)[:, :3]
        assert np.array_equal(ids, expected)

    def test_empty_index_pads(self):
        index = FlatIndex(4)
        dists, ids = index.search(np.zeros((2, 4), dtype=np.float32), 3)
        assert (ids == -1).all()
        assert np.isinf(dists).all()

    def test_single_vector_query_shape(self, index_and_data):
        index, _ = index_and_data
        dists, ids = index.search(np.zeros(16, dtype=np.float32), 2)
        assert ids.shape == (1, 2)

    def test_inner_product_metric_prefers_aligned(self):
        index = FlatIndex(3, metric="ip")
        index.add(np.array([[1, 0, 0], [0, 1, 0]], dtype=np.float32))
        _, ids = index.search(np.array([[2.0, 0.1, 0.0]], dtype=np.float32), 1)
        assert ids[0, 0] == 0


class TestReconstructAndMemory:
    def test_reconstruct_roundtrips(self, index_and_data):
        index, data = index_and_data
        rec = index.reconstruct(np.array([5, 7]))
        assert np.allclose(rec, data[[5, 7]])

    def test_memory_accounts_fp32(self, index_and_data):
        index, data = index_and_data
        assert index.memory_bytes() == data.size * 4
