"""Tests for the index interface and registry."""

import numpy as np
import pytest

from repro.ann.base import INDEX_REGISTRY, build_index, register_index
from repro.ann.flat import FlatIndex


class TestRegistry:
    def test_expected_keys_registered(self):
        for key in ("flat", "ivf_flat", "ivf_sq8", "ivf_sq4", "ivf_pq", "hnsw"):
            assert key in INDEX_REGISTRY

    def test_build_flat(self):
        index = build_index("flat", 8)
        assert isinstance(index, FlatIndex)
        assert index.dim == 8

    def test_build_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown index key"):
            build_index("faiss", 8)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_index("flat")(FlatIndex)

    def test_build_forwards_kwargs(self):
        index = build_index("ivf_sq8", 8, nlist=4, nprobe=2)
        assert index.nlist == 4
        assert index.nprobe == 2


class TestInterfaceContracts:
    def test_metric_validated_at_construction(self):
        with pytest.raises(ValueError):
            build_index("flat", 8, metric="manhattan")

    def test_dim_validated_at_construction(self):
        with pytest.raises(ValueError):
            build_index("flat", -1)

    def test_search_empty_returns_padding(self):
        index = build_index("flat", 4)
        dists, ids = index.search(np.zeros((3, 4), dtype=np.float32), 2)
        assert dists.shape == (3, 2)
        assert (ids == -1).all()

    def test_repr_mentions_state(self):
        index = build_index("flat", 4)
        text = repr(index)
        assert "dim=4" in text and "ntotal=0" in text
