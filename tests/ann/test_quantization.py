"""Tests for the SQ/PQ/OPQ codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann.quantization import (
    IdentityQuantizer,
    OPQQuantizer,
    ProductQuantizer,
    ScalarQuantizer,
    make_quantizer,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    return rng.normal(size=(500, 16)).astype(np.float32)


def rel_error(quantizer, data):
    rec = quantizer.decode(quantizer.encode(data))
    return np.linalg.norm(rec - data) / np.linalg.norm(data)


class TestIdentity:
    def test_lossless(self, data):
        q = IdentityQuantizer(16)
        q.train(data)
        assert np.array_equal(q.decode(q.encode(data)), data)

    def test_code_size_fp32(self):
        assert IdentityQuantizer(16).code_size() == 64


class TestScalar:
    def test_sq8_code_size(self):
        assert ScalarQuantizer(16, bits=8).code_size() == 16

    def test_sq4_code_size_packs_nibbles(self):
        assert ScalarQuantizer(16, bits=4).code_size() == 8

    def test_sq4_odd_dim_rounds_up(self):
        assert ScalarQuantizer(7, bits=4).code_size() == 4

    def test_sq8_error_small(self, data):
        q = ScalarQuantizer(16, bits=8)
        q.train(data)
        assert rel_error(q, data) < 0.02

    def test_sq4_error_larger_than_sq8(self, data):
        q8 = ScalarQuantizer(16, bits=8)
        q4 = ScalarQuantizer(16, bits=4)
        q8.train(data)
        q4.train(data)
        assert rel_error(q4, data) > rel_error(q8, data)

    def test_decoded_within_trained_range(self, data):
        q = ScalarQuantizer(16, bits=8)
        q.train(data)
        rec = q.decode(q.encode(data * 10))  # out-of-range inputs clamp
        assert rec.min() >= data.min() - 1e-3
        assert rec.max() <= data.max() + 1e-3

    def test_rejects_weird_bits(self):
        with pytest.raises(ValueError, match="bits"):
            ScalarQuantizer(8, bits=6)

    def test_encode_before_train_raises(self, data):
        with pytest.raises(RuntimeError, match="train"):
            ScalarQuantizer(16).encode(data)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_sq8_roundtrip_error_bounded_by_step(self, seed):
        rng = np.random.default_rng(seed)
        vecs = rng.uniform(-5, 5, size=(50, 8)).astype(np.float32)
        q = ScalarQuantizer(8, bits=8)
        q.train(vecs)
        rec = q.decode(q.encode(vecs))
        span = vecs.max(axis=0) - vecs.min(axis=0)
        step = span / 255
        assert (np.abs(rec - vecs) <= step * 0.51 + 1e-6).all()


class TestProduct:
    def test_code_size_is_m(self, data):
        assert ProductQuantizer(16, m=4).code_size() == 4

    def test_rejects_nondividing_m(self):
        with pytest.raises(ValueError, match="divide"):
            ProductQuantizer(16, m=5)

    def test_roundtrip_reduces_with_more_subquantizers(self, data):
        coarse = ProductQuantizer(16, m=2)
        fine = ProductQuantizer(16, m=8)
        coarse.train(data)
        fine.train(data)
        assert rel_error(fine, data) < rel_error(coarse, data)

    def test_codes_are_bytes(self, data):
        q = ProductQuantizer(16, m=4)
        q.train(data)
        assert q.encode(data[:10]).dtype == np.uint8

    def test_handles_fewer_points_than_codewords(self):
        rng = np.random.default_rng(1)
        tiny = rng.normal(size=(40, 8)).astype(np.float32)
        q = ProductQuantizer(8, m=2)
        q.train(tiny)
        rec = q.decode(q.encode(tiny))
        assert rec.shape == tiny.shape


class TestOPQ:
    def test_rotation_is_orthogonal(self, data):
        q = OPQQuantizer(16, m=4, opq_iters=2)
        q.train(data)
        r = q._rotation
        assert np.allclose(r @ r.T, np.eye(16), atol=1e-4)

    def test_not_worse_than_pq_on_correlated_data(self):
        # Correlated dims are where the learned rotation pays off.
        rng = np.random.default_rng(2)
        base = rng.normal(size=(400, 4)).astype(np.float32)
        mix = rng.normal(size=(4, 16)).astype(np.float32)
        data = base @ mix
        pq = ProductQuantizer(16, m=4)
        opq = OPQQuantizer(16, m=4, opq_iters=4)
        pq.train(data)
        opq.train(data)
        assert rel_error(opq, data) <= rel_error(pq, data) * 1.05


class TestFactory:
    @pytest.mark.parametrize(
        "scheme,expected_bytes",
        [("flat", 64), ("sq8", 16), ("sq4", 8), ("pq4", 4), ("opq4", 4)],
    )
    def test_code_sizes(self, scheme, expected_bytes):
        assert make_quantizer(scheme, 16).code_size() == expected_bytes

    def test_table1_code_sizes_at_768(self):
        # The exact Table 1 byte counts for BGE-dim vectors.
        expected = {"flat": 3072, "sq8": 768, "sq4": 384, "pq256": 256, "pq384": 384}
        for scheme, size in expected.items():
            assert make_quantizer(scheme, 768).code_size() == size

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError, match="unknown quantization"):
            make_quantizer("dct", 16)


class TestSampledTraining:
    """PQ/OPQ codebooks train on a bounded deterministic sample; the sample
    size must not change the API contract and must stay reproducible."""

    def _rows(self, n=6000, dim=16, seed=0):
        rng = np.random.default_rng(seed)
        centers = rng.normal(scale=3.0, size=(16, dim))
        return (
            centers[rng.integers(0, 16, size=n)] + rng.normal(size=(n, dim))
        ).astype(np.float32)

    def test_sampled_training_deterministic(self):
        from repro.ann.quantization import ProductQuantizer

        rows = self._rows()
        a = ProductQuantizer(16, m=4, train_seed=5, train_sample=2000)
        b = ProductQuantizer(16, m=4, train_seed=5, train_sample=2000)
        a.train(rows)
        b.train(rows)
        assert np.array_equal(a._codebooks, b._codebooks)

    def test_sampled_quality_close_to_full(self):
        from repro.ann.quantization import ProductQuantizer

        rows = self._rows()
        full = ProductQuantizer(16, m=4, train_seed=0)
        sampled = ProductQuantizer(16, m=4, train_seed=0, train_sample=3000)
        full.train(rows)
        sampled.train(rows)
        probe = rows[:1024]

        def err(pq):
            return float(np.mean((pq.decode(pq.encode(probe)) - probe) ** 2))

        assert err(sampled) <= err(full) * 1.25

    def test_sample_larger_than_data_is_noop(self):
        from repro.ann.quantization import ProductQuantizer

        rows = self._rows(n=1000)
        capped = ProductQuantizer(16, m=4, train_seed=0, train_sample=50_000)
        full = ProductQuantizer(16, m=4, train_seed=0)
        capped.train(rows)
        full.train(rows)
        assert np.array_equal(capped._codebooks, full._codebooks)

    def test_train_workers_bit_exact(self):
        from repro.ann.quantization import ProductQuantizer

        rows = self._rows(n=2000)
        serial = ProductQuantizer(16, m=4, train_seed=0, train_workers=1)
        threaded = ProductQuantizer(16, m=4, train_seed=0, train_workers=4)
        serial.train(rows)
        threaded.train(rows)
        assert np.array_equal(serial._codebooks, threaded._codebooks)

    def test_opq_sampled_training(self):
        from repro.ann.quantization import OPQQuantizer

        rows = self._rows(n=3000)
        opq = OPQQuantizer(16, m=4, train_seed=0, train_sample=1500)
        opq.train(rows)
        codes = opq.encode(rows[:64])
        assert opq.decode(codes).shape == (64, 16)

    def test_invalid_train_sample_rejected(self):
        from repro.ann.quantization import ProductQuantizer

        with pytest.raises(ValueError, match="train_sample"):
            ProductQuantizer(16, m=4, train_sample=0)
