"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if isinstance(a, type(parser._actions[-1]))
        )
        commands = set(sub.choices)
        assert commands == {
            "build", "build-index", "accuracy", "profile", "multinode",
            "serve-sim", "cache", "faults", "overload", "mutate", "serve",
            "trace", "reproduce",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestBuildAndAccuracy:
    def test_build_then_evaluate(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "build-index", "--docs", "1500", "--dim", "32",
            "--clusters", "5", "--out", store,
        ]) == 0
        out = capsys.readouterr().out
        assert "5 shards" in out

        assert main([
            "accuracy", "--store", store, "--queries", "24",
            "--clusters-searched", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "NDCG" in out
        score = float(out.split(":")[1].split("(")[0])
        assert score > 0.85  # routing works on the reloaded store

    def test_split_strategy(self, tmp_path, capsys):
        store = str(tmp_path / "split")
        assert main([
            "build-index", "--docs", "1000", "--dim", "32",
            "--clusters", "4", "--strategy", "split", "--out", store,
        ]) == 0
        assert "split datastore" in capsys.readouterr().out


class TestModelCommands:
    def test_profile(self, capsys):
        assert main(["profile", "--tokens", "1e10", "--batch", "32"]) == 0
        out = capsys.readouterr().out
        assert "nProbe" in out and "index memory" in out

    def test_multinode(self, capsys):
        assert main([
            "multinode", "--tokens", "1e11", "--batch", "64",
            "--dvfs", "baseline",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup vs monolithic" in out

    def test_multinode_enhanced_dvfs(self, capsys):
        assert main([
            "multinode", "--tokens", "1e11", "--dvfs", "enhanced",
            "--inference-window", "2.0",
        ]) == 0
        assert "dvfs=enhanced" in capsys.readouterr().out

    def test_serve_sim(self, capsys):
        assert main([
            "serve-sim", "--batches", "3", "--output-tokens", "32",
            "--batch", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "gpu utilization" in out

    def test_cache_sweep_writes_artifact(self, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "cache_sweep.json")
        assert main([
            "cache", "--alphas", "0", "1.0", "--unique", "16",
            "--requests", "64", "--batch", "16", "--k", "3",
            "--capacity", "32", "--out", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out and "speedup" in out
        # The acceptance criterion: cache counters surface via obs metrics.
        assert "retrieval_cache_lookups_total" in out
        payload = json.loads(open(out_path).read())
        assert payload["experiment"] == "serve_cache_skew_sweep"
        assert len(payload["points"]) == 2
        assert all(0.0 <= p["hit_rate"] <= 1.0 for p in payload["points"])

    def test_faults_sweep_writes_artifact(self, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "faults.json")
        assert main([
            "faults", "--killed", "0", "1", "--queries", "8",
            "--out", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "killed=0" in out and "killed=1" in out
        payload = json.loads(open(out_path).read())
        assert payload["figure"] == "fig_faults"
        assert len(payload["points"]) == 2


class TestServingCommands:
    def test_overload_writes_artifact(self, tmp_path, capsys):
        import json

        # The --smoke goodput floor is timing-sensitive (it compares two
        # measured throughputs), so it runs as its own CI step; here we pin
        # the deterministic plumbing: table, metrics snapshot, artifact.
        out_path = str(tmp_path / "overload.json")
        assert main([
            "overload", "--loads", "0.5", "2.0", "--requests", "120",
            "--out", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "overload sweep" in out
        assert "failover (mid-run node kill):" in out
        assert "retrieval_failovers_total" in out
        payload = json.loads(open(out_path).read())
        assert payload["experiment"] == "overload_sweep"
        assert {p["load"] for p in payload["admission"]} == {0.5, 2.0}
        assert {p["load"] for p in payload["no_admission"]} == {0.5, 2.0}
        assert payload["failover"]

    def test_mutate_smoke_passes_and_writes_artifact(self, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "mutation.json")
        assert main([
            "mutate", "--churns", "0", "0.05", "--docs", "800",
            "--queries", "64", "--batch", "16", "--smoke", "--out", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "live-mutation churn sweep" in out
        assert "smoke checks passed" in out
        # The obs counters must surface through the CLI snapshot.
        assert "datastore_inserts_total" in out
        assert "datastore_deletes_total" in out
        assert "datastore_compactions_total" in out
        payload = json.loads(open(out_path).read())
        assert payload["experiment"] == "mutation_churn"
        assert len(payload["points"]) == 2
        churned = payload["points"][1]
        assert churned["churn"] == 0.05
        assert churned["peak_delta_rows"] > 0
        assert churned["deleted_leaks"] == 0
        assert churned["live_equals_compacted"] is True

    def test_serve_writes_artifact(self, tmp_path, capsys):
        import json

        # The --smoke acceptance gate runs as its own CI step (serve-smoke);
        # here we pin the deterministic plumbing: table, metrics, artifact.
        out_path = str(tmp_path / "serve.json")
        assert main([
            "serve", "--docs", "150", "--requests", "4", "--strides", "3",
            "--out", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "live serving pipeline" in out
        assert "pipeline_requests_total" in out
        payload = json.loads(open(out_path).read())
        assert payload["experiment"] == "serve_pipeline"
        assert {p["mode"] for p in payload["points"]} == {
            "sequential", "pipelined", "lookahead",
        }
        assert all(p["mean_ttft_s"] > 0 for p in payload["points"])

    def test_trace_writes_chrome_trace(self, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "trace.json")
        assert main([
            "trace", "retrieval", "--out", out_path, "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "invariants OK" in out
        assert "chrome trace ->" in out
        payload = json.loads(open(out_path).read())
        events = payload["traceEvents"] if isinstance(payload, dict) else payload
        assert len(events) > 0


class TestBuildCommand:
    def test_build_reports_cache_stats(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "build", "--docs", "600", "--clusters", "3", "--dim", "16",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "1 miss(es)" in cold and "1 store(s)" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "1 hit(s)" in warm and "0 miss(es)" in warm

    def test_build_no_cache(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "build", "--docs", "600", "--clusters", "3", "--dim", "16",
            "--no-cache", "--out", str(tmp_path / "store"),
        ]) == 0
        out = capsys.readouterr().out
        assert "build-cache: disabled" in out
        assert (tmp_path / "store" / "manifest.json").exists()
