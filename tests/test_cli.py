"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if isinstance(a, type(parser._actions[-1]))
        )
        commands = set(sub.choices)
        assert commands == {
            "build", "build-index", "accuracy", "profile", "multinode",
            "serve-sim", "cache", "faults", "overload", "trace", "reproduce",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestBuildAndAccuracy:
    def test_build_then_evaluate(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "build-index", "--docs", "1500", "--dim", "32",
            "--clusters", "5", "--out", store,
        ]) == 0
        out = capsys.readouterr().out
        assert "5 shards" in out

        assert main([
            "accuracy", "--store", store, "--queries", "24",
            "--clusters-searched", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "NDCG" in out
        score = float(out.split(":")[1].split("(")[0])
        assert score > 0.85  # routing works on the reloaded store

    def test_split_strategy(self, tmp_path, capsys):
        store = str(tmp_path / "split")
        assert main([
            "build-index", "--docs", "1000", "--dim", "32",
            "--clusters", "4", "--strategy", "split", "--out", store,
        ]) == 0
        assert "split datastore" in capsys.readouterr().out


class TestModelCommands:
    def test_profile(self, capsys):
        assert main(["profile", "--tokens", "1e10", "--batch", "32"]) == 0
        out = capsys.readouterr().out
        assert "nProbe" in out and "index memory" in out

    def test_multinode(self, capsys):
        assert main([
            "multinode", "--tokens", "1e11", "--batch", "64",
            "--dvfs", "baseline",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup vs monolithic" in out

    def test_multinode_enhanced_dvfs(self, capsys):
        assert main([
            "multinode", "--tokens", "1e11", "--dvfs", "enhanced",
            "--inference-window", "2.0",
        ]) == 0
        assert "dvfs=enhanced" in capsys.readouterr().out

    def test_serve_sim(self, capsys):
        assert main([
            "serve-sim", "--batches", "3", "--output-tokens", "32",
            "--batch", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "gpu utilization" in out

    def test_cache_sweep_writes_artifact(self, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "cache_sweep.json")
        assert main([
            "cache", "--alphas", "0", "1.0", "--unique", "16",
            "--requests", "64", "--batch", "16", "--k", "3",
            "--capacity", "32", "--out", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out and "speedup" in out
        # The acceptance criterion: cache counters surface via obs metrics.
        assert "retrieval_cache_lookups_total" in out
        payload = json.loads(open(out_path).read())
        assert payload["experiment"] == "serve_cache_skew_sweep"
        assert len(payload["points"]) == 2
        assert all(0.0 <= p["hit_rate"] <= 1.0 for p in payload["points"])

    def test_faults_sweep_writes_artifact(self, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "faults.json")
        assert main([
            "faults", "--killed", "0", "1", "--queries", "8",
            "--out", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "killed=0" in out and "killed=1" in out
        payload = json.loads(open(out_path).read())
        assert payload["figure"] == "fig_faults"
        assert len(payload["points"]) == 2


class TestBuildCommand:
    def test_build_reports_cache_stats(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "build", "--docs", "600", "--clusters", "3", "--dim", "16",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "1 miss(es)" in cold and "1 store(s)" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "1 hit(s)" in warm and "0 miss(es)" in warm

    def test_build_no_cache(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "build", "--docs", "600", "--clusters", "3", "--dim", "16",
            "--no-cache", "--out", str(tmp_path / "store"),
        ]) == 0
        out = capsys.readouterr().out
        assert "build-cache: disabled" in out
        assert (tmp_path / "store" / "manifest.json").exists()
