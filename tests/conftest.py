"""Shared fixtures: small corpora, clusterings, and fleets built once."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

# Named hypothesis profiles, selected via HYPOTHESIS_PROFILE:
# - dev (default): moderate examples, no deadline — friendly to laptops.
# - ci: few examples with a generous per-example deadline so a pathological
#   slowdown fails fast instead of eating the CI budget.
# - thorough: the nightly setting — many examples, no deadline.
hypothesis_settings.register_profile("dev", max_examples=25, deadline=None)
hypothesis_settings.register_profile(
    "ci",
    max_examples=10,
    deadline=10_000,
    suppress_health_check=(HealthCheck.too_slow,),
)
hypothesis_settings.register_profile("thorough", max_examples=200, deadline=None)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.core.clustering import cluster_datastore, split_datastore_evenly
from repro.core.config import HermesConfig
from repro.datastore.embeddings import make_corpus
from repro.datastore.queries import trivia_queries
from repro.hardware.node import NodeCluster
from repro.perfmodel.aggregate import MultiNodeModel
from repro.perfmodel.measurements import index_memory_bytes


@pytest.fixture(scope="session")
def small_corpus():
    """A 3000-doc, 10-topic corpus shared by retrieval tests."""
    return make_corpus(3000, n_topics=10, dim=32, spread=0.35, seed=42)


@pytest.fixture(scope="session")
def small_queries(small_corpus):
    """32 TriviaQA-like queries over the shared corpus."""
    return trivia_queries(small_corpus.topic_model, 32)


@pytest.fixture(scope="session")
def hermes_config():
    return HermesConfig()


@pytest.fixture(scope="session")
def clustered(small_corpus, hermes_config):
    """Hermes K-means clustering of the shared corpus (built once)."""
    return cluster_datastore(small_corpus.embeddings, hermes_config)


@pytest.fixture(scope="session")
def even_split(small_corpus, hermes_config):
    """Naive random split of the shared corpus (built once)."""
    return split_datastore_evenly(small_corpus.embeddings, hermes_config)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def ten_node_fleet():
    """Ten Xeon Gold nodes hosting equal 10B-token shards."""
    cluster = NodeCluster.homogeneous(10)
    cluster.host_shards([10e9] * 10, [index_memory_bytes(10e9)] * 10)
    return cluster


@pytest.fixture()
def fleet_model(ten_node_fleet):
    return MultiNodeModel(ten_node_fleet)
