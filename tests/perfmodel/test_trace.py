"""Tests for load generation and access traces."""

import numpy as np
import pytest

from repro.perfmodel.trace import BatchRouting, ClusterAccessTrace, LoadGenerator


class TestBatchRouting:
    def test_node_loads(self):
        routing = BatchRouting(clusters=np.array([[0, 1], [1, 2], [1, 1]]))
        loads = routing.node_loads(4)
        assert list(loads) == [1, 4, 1, 0]

    def test_padding_ignored(self):
        routing = BatchRouting(clusters=np.array([[0, -1]]))
        assert list(routing.node_loads(2)) == [1, 0]

    def test_out_of_range_cluster_rejected(self):
        routing = BatchRouting(clusters=np.array([[5]]))
        with pytest.raises(ValueError, match="references cluster"):
            routing.node_loads(3)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            BatchRouting(clusters=np.array([1, 2]))

    def test_batch_size(self):
        assert BatchRouting(clusters=np.zeros((7, 3), dtype=int)).batch_size == 7


class TestAccessTrace:
    def test_accumulates_counts(self):
        trace = ClusterAccessTrace(n_clusters=3)
        trace.record(BatchRouting(clusters=np.array([[0, 1]])))
        trace.record(BatchRouting(clusters=np.array([[1, 2]])))
        assert list(trace.access_counts()) == [1, 2, 1]
        assert len(trace) == 2

    def test_frequency_normalised(self):
        trace = ClusterAccessTrace(n_clusters=2)
        trace.record(BatchRouting(clusters=np.array([[0], [0], [1]])))
        freq = trace.access_frequency()
        assert freq.sum() == pytest.approx(1.0)
        assert freq[0] == pytest.approx(2 / 3)

    def test_imbalance(self):
        trace = ClusterAccessTrace(n_clusters=2)
        trace.record(BatchRouting(clusters=np.array([[0], [0], [0], [1]])))
        assert trace.imbalance() == 3.0

    def test_unaccessed_cluster_infinite_imbalance(self):
        trace = ClusterAccessTrace(n_clusters=3)
        trace.record(BatchRouting(clusters=np.array([[0], [1]])))
        assert trace.imbalance() == float("inf")

    def test_mean_loads(self):
        trace = ClusterAccessTrace(n_clusters=2)
        trace.record(BatchRouting(clusters=np.array([[0], [0]])))
        trace.record(BatchRouting(clusters=np.array([[1], [1]])))
        assert list(trace.mean_loads()) == [1.0, 1.0]

    def test_empty_trace_mean_zero(self):
        trace = ClusterAccessTrace(n_clusters=2)
        assert list(trace.mean_loads()) == [0.0, 0.0]


class TestLoadGenerator:
    def test_batch_shape(self):
        emb = np.random.default_rng(0).normal(size=(10, 4)).astype(np.float32)
        gen = LoadGenerator(emb, batch_size=4)
        assert gen.next_batch().shape == (4, 4)

    def test_recycles_pool(self):
        emb = np.arange(12, dtype=np.float32).reshape(6, 2)
        gen = LoadGenerator(emb, batch_size=4)
        batches = gen.batches(3)  # 12 draws from a pool of 6
        drawn = np.concatenate(batches)
        # Each pool row appears exactly twice across one full double-cycle.
        unique, counts = np.unique(drawn, axis=0, return_counts=True)
        assert len(unique) == 6
        assert (counts == 2).all()

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            LoadGenerator(np.empty((0, 4), dtype=np.float32), batch_size=2)

    def test_rejects_bad_batch_size(self):
        emb = np.zeros((4, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            LoadGenerator(emb, batch_size=0)
