"""Tests for the calibrated measurement models."""

import pytest

from repro.hardware.cpu import NEOVERSE_N1, XEON_PLATINUM_8380
from repro.perfmodel.measurements import (
    FIG4_MEASUREMENTS,
    FIG4_MEMORY_GB,
    REF_BATCH,
    REF_DATASTORE_TOKENS,
    REF_RETRIEVAL_LATENCY_S,
    EncoderCostModel,
    RetrievalCostModel,
    index_memory_bytes,
    vectors_for_tokens,
)


@pytest.fixture()
def cost():
    return RetrievalCostModel()


class TestCalibrationAnchor:
    def test_reference_point_exact(self, cost):
        lat = cost.batch_latency(REF_DATASTORE_TOKENS, REF_BATCH)
        assert lat == pytest.approx(REF_RETRIEVAL_LATENCY_S)

    def test_linear_in_datastore_size(self, cost):
        # §3 Takeaway 1: latency scales linearly with datastore tokens.
        at_10b = cost.batch_latency(10e9, 32)
        at_100b = cost.batch_latency(100e9, 32)
        assert at_100b == pytest.approx(10 * at_10b)

    def test_sublinear_in_nprobe(self, cost):
        full = cost.batch_latency(10e9, 32, nprobe=128)
        light = cost.batch_latency(10e9, 32, nprobe=8)
        ratio = full / light
        assert 1 < ratio < 16  # sublinear: less than the 16x nProbe ratio


class TestBatchModel:
    def test_flat_below_core_count(self, cost):
        # One thread per query: batch <= cores costs one single-query latency.
        assert cost.batch_latency(10e9, 8) == cost.batch_latency(10e9, 32)

    def test_grows_beyond_core_count(self, cost):
        assert cost.batch_latency(10e9, 128) > cost.batch_latency(10e9, 32)

    def test_throughput_improves_with_batch(self, cost):
        # Work stealing keeps cores busy: larger batches raise QPS.
        assert cost.throughput_qps(10e9, 128) > cost.throughput_qps(10e9, 8)

    def test_zero_batch_free(self, cost):
        assert cost.batch_latency(10e9, 0) == 0.0

    def test_utilization_partial_batch(self, cost):
        assert cost.utilization(8) == pytest.approx(8 / 32)
        assert cost.utilization(64) == 1.0


class TestPlatformScaling:
    def test_faster_platform_lower_latency(self):
        gold = RetrievalCostModel()
        platinum = RetrievalCostModel(platform=XEON_PLATINUM_8380)
        assert platinum.batch_latency(10e9, 32) < gold.batch_latency(10e9, 32)

    def test_arm_slower_per_core_but_wide(self):
        gold = RetrievalCostModel()
        arm = RetrievalCostModel(platform=NEOVERSE_N1)
        # Single query slower on ARM...
        assert arm.single_query_latency(10e9) > gold.single_query_latency(10e9)
        # ...but 128-query batches fit its 80 cores in one wave.
        assert arm.waves(80) == 1.0

    def test_frequency_slowdown(self):
        cost = RetrievalCostModel()
        slow = cost.batch_latency(10e9, 32, freq_ghz=cost.platform.max_freq_ghz / 2)
        fast = cost.batch_latency(10e9, 32)
        assert slow == pytest.approx(2 * fast)


class TestEnergy:
    def test_energy_scales_with_latency(self, cost):
        assert cost.batch_energy(100e9, 32) == pytest.approx(
            10 * cost.batch_energy(10e9, 32), rel=0.01
        )

    def test_lower_frequency_saves_energy(self, cost):
        full = cost.batch_energy(10e9, 32)
        slow = cost.batch_energy(10e9, 32, freq_ghz=1.2)
        assert slow < full


class TestMemoryModel:
    def test_tokens_per_vector(self):
        assert vectors_for_tokens(10e9) == pytest.approx(1e8)

    def test_10b_index_near_fig4(self):
        # Fig. 4: the 10B-token IVF-SQ8 index is ~71 GB.
        gb = index_memory_bytes(10e9) / 1e9
        assert 60 < gb < 90

    def test_1t_index_near_10tb(self):
        # Fig. 7: trillion-token stores need "nearly 10 TB".
        tb = index_memory_bytes(1e12) / 1e12
        assert 5 < tb < 12

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            index_memory_bytes(-1)


class TestEncoderModel:
    def test_reference_batch(self):
        enc = EncoderCostModel()
        assert enc.batch_latency(32) == pytest.approx(0.115)

    def test_sublinear_above_reference(self):
        enc = EncoderCostModel()
        assert enc.batch_latency(128) < 4 * enc.batch_latency(32)

    def test_small_batch_latency_floor(self):
        enc = EncoderCostModel()
        assert enc.batch_latency(1) > 0.115 * 0.4

    def test_energy_positive(self):
        assert EncoderCostModel().batch_energy(32) > 0


class TestFig4Table:
    def test_hnsw_faster_ivf_smaller(self):
        ivf_lat, ivf_qps = FIG4_MEASUREMENTS[("ivf", 128)]
        hnsw_lat, hnsw_qps = FIG4_MEASUREMENTS[("hnsw", 128)]
        assert ivf_lat / hnsw_lat > 2.4
        assert hnsw_qps / ivf_qps > 2.4
        assert FIG4_MEMORY_GB["hnsw"] / FIG4_MEMORY_GB["ivf"] > 2.3
