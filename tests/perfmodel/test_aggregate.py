"""Tests for the multi-node aggregation model."""

import numpy as np
import pytest

from repro.hardware.node import NodeCluster
from repro.perfmodel.aggregate import (
    DVFSPolicy,
    MultiNodeModel,
    expected_deep_loads,
)
from repro.perfmodel.measurements import index_memory_bytes


@pytest.fixture()
def skewed_fleet():
    """Ten nodes with ~2x shard-size imbalance (as real clustering yields)."""
    cluster = NodeCluster.homogeneous(10)
    sizes = np.linspace(2.0, 1.0, 10) * 10e9 / 1.5
    cluster.host_shards(list(sizes), [index_memory_bytes(s) for s in sizes])
    return MultiNodeModel(cluster)


class TestMonolithic:
    def test_single_node_active(self, fleet_model):
        result = fleet_model.monolithic(100e9, 32)
        assert result.nodes_active == 1
        assert result.latency_s == pytest.approx(5.62, rel=0.01)


class TestNaiveSplit:
    def test_all_nodes_active(self, fleet_model):
        result = fleet_model.naive_split(32)
        assert result.deep.nodes_active == 10

    def test_latency_is_slowest_shard(self, skewed_fleet):
        result = skewed_fleet.naive_split(32)
        assert result.latency_s == pytest.approx(
            result.deep.per_node_latency_s.max()
        )

    def test_split_beats_monolithic_latency(self, fleet_model):
        mono = fleet_model.monolithic(100e9, 32)
        naive = fleet_model.naive_split(32)
        assert naive.latency_s < mono.latency_s

    def test_split_costs_more_energy_than_hermes(self, fleet_model):
        naive = fleet_model.naive_split(128)
        loads = expected_deep_loads(128, np.full(10, 0.1), 3)
        hermes = fleet_model.hermes(128, loads)
        assert hermes.energy_j < naive.energy_j


class TestHermes:
    def test_has_sample_phase(self, fleet_model):
        loads = expected_deep_loads(32, np.full(10, 0.1), 3)
        result = fleet_model.hermes(32, loads)
        assert result.sample is not None
        assert result.sample.nodes_active == 10  # sampling touches all nodes

    def test_latency_sum_of_phases(self, fleet_model):
        loads = expected_deep_loads(32, np.full(10, 0.1), 3)
        result = fleet_model.hermes(32, loads)
        assert result.latency_s == pytest.approx(
            result.sample.latency_s + result.deep.latency_s
        )

    def test_sample_phase_cheap(self, fleet_model):
        loads = expected_deep_loads(32, np.full(10, 0.1), 3)
        result = fleet_model.hermes(32, loads)
        assert result.sample.latency_s < result.deep.latency_s

    def test_wrong_load_vector_rejected(self, fleet_model):
        with pytest.raises(ValueError, match="per-node loads"):
            fleet_model.hermes(32, np.array([1, 2]))

    def test_enhanced_requires_target(self, fleet_model):
        loads = expected_deep_loads(32, np.full(10, 0.1), 3)
        with pytest.raises(ValueError, match="latency_target"):
            fleet_model.hermes(32, loads, dvfs=DVFSPolicy.ENHANCED)


class TestDVFSOrdering:
    def test_baseline_saves_on_skewed_fleet(self, skewed_fleet):
        loads = expected_deep_loads(128, np.full(10, 0.1), 3)
        none = skewed_fleet.hermes(128, loads, dvfs=DVFSPolicy.NONE)
        base = skewed_fleet.hermes(128, loads, dvfs=DVFSPolicy.BASELINE)
        assert base.energy_j < none.energy_j

    def test_baseline_does_not_hurt_latency(self, skewed_fleet):
        loads = expected_deep_loads(128, np.full(10, 0.1), 3)
        none = skewed_fleet.hermes(128, loads, dvfs=DVFSPolicy.NONE)
        base = skewed_fleet.hermes(128, loads, dvfs=DVFSPolicy.BASELINE)
        assert base.latency_s <= none.latency_s * 1.001

    def test_enhanced_saves_at_least_baseline(self, skewed_fleet):
        loads = expected_deep_loads(128, np.full(10, 0.1), 3)
        window = 10.0  # generous inference window
        period = max(
            window,
            skewed_fleet.hermes(128, loads).deep.latency_s,
        )
        base = skewed_fleet.hermes(
            128, loads, dvfs=DVFSPolicy.BASELINE, period_s=period
        )
        enhanced = skewed_fleet.hermes(
            128,
            loads,
            dvfs=DVFSPolicy.ENHANCED,
            latency_target_s=window,
            period_s=period,
        )
        assert enhanced.energy_j <= base.energy_j * 1.001

    def test_enhanced_latency_bounded_by_window(self, skewed_fleet):
        loads = expected_deep_loads(128, np.full(10, 0.1), 3)
        window = 100.0
        enhanced = skewed_fleet.hermes(
            128, loads, dvfs=DVFSPolicy.ENHANCED, latency_target_s=window
        )
        assert enhanced.deep.latency_s <= window * 1.001


class TestThroughput:
    def test_hermes_beats_naive_at_large_batch(self, fleet_model):
        naive = fleet_model.naive_split(128)
        skew = np.array([0.15, 0.13, 0.12, 0.11, 0.1, 0.1, 0.09, 0.08, 0.07, 0.05])
        loads = expected_deep_loads(128, skew, 3)
        hermes = fleet_model.hermes(128, loads)
        tput_naive = fleet_model.throughput_qps(128, naive)
        tput_hermes = fleet_model.throughput_qps(128, hermes)
        assert tput_hermes > tput_naive


class TestExpectedDeepLoads:
    def test_total_assignments_preserved(self):
        loads = expected_deep_loads(32, np.full(10, 0.1), 3)
        assert loads.sum() == 32 * 3

    def test_capped_at_batch(self):
        hot = np.array([0.9, 0.1])
        loads = expected_deep_loads(32, hot, 2)
        assert loads.max() <= 32

    def test_skew_concentrates_load(self):
        skew = np.array([0.4, 0.3, 0.2, 0.1])
        loads = expected_deep_loads(100, skew, 2)
        assert loads[0] > loads[3]

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_deep_loads(32, np.array([0.5, 0.4]), 1)  # doesn't sum to 1
        with pytest.raises(ValueError):
            expected_deep_loads(32, np.full(4, 0.25), 5)  # fan-out too large
