"""Tests for the prefix-cache models."""

import pytest

from repro.llm.kvcache import CacheStats, IdealPrefixCache, PrefixCache


class TestPrefixCache:
    def test_miss_then_hit(self):
        cache = PrefixCache(capacity=4)
        assert not cache.lookup(1)
        cache.insert(1, 100)
        assert cache.lookup(1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = PrefixCache(capacity=2)
        cache.insert(1, 10)
        cache.insert(2, 10)
        cache.lookup(1)       # 1 becomes MRU
        cache.insert(3, 10)   # evicts 2
        assert cache.lookup(1)
        assert not cache.lookup(2)
        assert cache.lookup(3)

    def test_reinsert_refreshes_not_grows(self):
        cache = PrefixCache(capacity=2)
        cache.insert(1, 10)
        cache.insert(1, 10)
        assert len(cache) == 1

    def test_saved_tokens(self):
        cache = PrefixCache(capacity=4)
        cache.insert(1, 100)
        cache.insert(2, 50)
        assert cache.saved_tokens([1, 2, 9]) == 150

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefixCache(capacity=0)
        with pytest.raises(ValueError):
            PrefixCache(capacity=1).insert(1, 0)

    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0


class TestIdealCache:
    def test_first_stride_full_prefill(self):
        cache = IdealPrefixCache(input_tokens=512, stride_tokens=16)
        assert cache.prefill_fraction(0) == 1.0

    def test_later_strides_tiny(self):
        cache = IdealPrefixCache(input_tokens=512, stride_tokens=16)
        frac = cache.prefill_fraction(3)
        assert frac == pytest.approx(16 / 528)

    def test_negative_stride_rejected(self):
        with pytest.raises(ValueError):
            IdealPrefixCache().prefill_fraction(-1)
