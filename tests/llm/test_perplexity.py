"""Tests for the stride-perplexity model."""

import pytest

from repro.llm.perplexity import (
    GPT2_762M,
    GPT2_1_5B,
    PERPLEXITY_CURVES,
    RETRO_578M,
    PerplexityCurve,
    perplexity_vs_stride,
)


class TestCurveShape:
    def test_monotone_in_stride(self):
        for curve in PERPLEXITY_CURVES.values():
            ppl = perplexity_vs_stride(curve, [1, 2, 4, 8, 16, 32, 64])
            assert all(b >= a for a, b in zip(ppl, ppl[1:]))

    def test_bounded_by_no_retrieval_ceiling(self):
        for curve in PERPLEXITY_CURVES.values():
            assert curve.perplexity(4096) < curve.ppl_no_retrieval
            assert curve.perplexity(1) < curve.ppl_no_retrieval

    def test_bigger_gpt2_always_better(self):
        for stride in (1, 4, 16, 64):
            assert GPT2_1_5B.perplexity(stride) < GPT2_762M.perplexity(stride)


class TestPaperClaims:
    def test_retro_at_optimal_stride_matches_larger_model(self):
        # Fig. 5's point: frequent retrieval lets RETRO-578M rival a model
        # with ~2.6x the parameters.
        retro_frequent = RETRO_578M.perplexity(4)
        gpt2_large_typical = GPT2_1_5B.perplexity(16)
        assert abs(retro_frequent - gpt2_large_typical) < 3.0

    def test_retro_loses_advantage_at_long_strides(self):
        assert RETRO_578M.perplexity(64) > GPT2_762M.perplexity(64)

    def test_retrieval_trained_model_more_stride_sensitive(self):
        retro_swing = RETRO_578M.perplexity(64) - RETRO_578M.perplexity(2)
        gpt2_swing = GPT2_762M.perplexity(64) - GPT2_762M.perplexity(2)
        assert retro_swing > gpt2_swing


class TestValidation:
    def test_rejects_nonpositive_stride(self):
        with pytest.raises(ValueError):
            GPT2_762M.perplexity(0)

    def test_rejects_bad_constants(self):
        with pytest.raises(ValueError):
            PerplexityCurve(name="x", ppl_no_retrieval=0.5, retrieval_gain=1,
                            stride_sensitivity=0.1)
        with pytest.raises(ValueError):
            PerplexityCurve(name="x", ppl_no_retrieval=10, retrieval_gain=-1,
                            stride_sensitivity=0.1)
