"""Tests for the model zoo."""

import pytest

from repro.llm.models import GEMMA2_9B, MODELS, OPT_30B, PHI_1_5, ModelSpec, get_model


class TestZoo:
    def test_three_models(self):
        assert len(MODELS) == 3

    def test_paper_parameter_counts(self):
        assert PHI_1_5.params_b == pytest.approx(1.3)
        assert GEMMA2_9B.params_b == pytest.approx(9.0)
        assert OPT_30B.params_b == pytest.approx(30.0)

    def test_memory_ordering_follows_size(self):
        assert PHI_1_5.min_mem_gb < GEMMA2_9B.min_mem_gb < OPT_30B.min_mem_gb

    def test_lookup(self):
        assert get_model("gemma2_9b") is GEMMA2_9B

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            get_model("llama")

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelSpec(name="x", params_b=0, min_mem_gb=1)
        with pytest.raises(ValueError):
            ModelSpec(name="x", params_b=1, min_mem_gb=0)
