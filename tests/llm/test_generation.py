"""Tests for the strided-generation timeline."""

import pytest

from repro.llm.generation import (
    GenerationConfig,
    RetrievalCost,
    constant_retrieval,
    simulate_generation,
    steady_state_throughput_qps,
)
from repro.llm.inference import InferenceModel


@pytest.fixture()
def inference():
    return InferenceModel()


def run(retrieval_s, inference, **cfg):
    provider = constant_retrieval(RetrievalCost(latency_s=retrieval_s, energy_j=100.0))
    return simulate_generation(provider, inference, GenerationConfig(**cfg))


class TestConfig:
    def test_n_strides(self):
        assert GenerationConfig(output_tokens=256, stride=16).n_strides == 16
        assert GenerationConfig(output_tokens=250, stride=16).n_strides == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            GenerationConfig(batch=0)
        with pytest.raises(ValueError):
            GenerationConfig(stride=0)

    def test_retrieval_cost_validation(self):
        with pytest.raises(ValueError):
            RetrievalCost(latency_s=-1.0, energy_j=0.0)


class TestSequentialTimeline:
    def test_e2e_is_sum_of_stages(self, inference):
        result = run(1.0, inference)
        assert result.e2e_s == pytest.approx(
            result.encode_s + result.retrieval_s + result.prefill_s + result.decode_s
        )

    def test_retrieval_total_is_per_stride_times_strides(self, inference):
        result = run(1.0, inference)
        assert result.retrieval_s == pytest.approx(result.config.n_strides * 1.0)

    def test_ttft_contains_one_retrieval_and_prefill(self, inference):
        result = run(2.0, inference)
        assert result.ttft_s == pytest.approx(
            result.encode_s + 2.0 + result.first_prefill_s
        )

    def test_paper_e2e_calibration(self, inference):
        # The paper's Fig. 6 anchors, through the full timeline.
        for tokens_latency, expected in ((0.00562, 12.0), (5.62, 101.8), (56.2, 909.1)):
            result = run(tokens_latency, inference)
            assert result.e2e_s == pytest.approx(expected, rel=0.03)

    def test_ttft_retrieval_share_calibration(self, inference):
        # ~61% at 10B (0.562 s retrieval), ~94% at 100B (5.62 s).
        assert run(0.562, inference).retrieval_fraction_of_ttft == pytest.approx(
            0.612, abs=0.02
        )
        assert run(5.62, inference).retrieval_fraction_of_ttft == pytest.approx(
            0.94, abs=0.01
        )


class TestPrefixCaching:
    def test_cached_faster_than_baseline(self, inference):
        base = run(0.5, inference)
        cached = run(0.5, inference, prefix_cached=True)
        assert cached.e2e_s < base.e2e_s

    def test_cache_only_skips_prefill(self, inference):
        base = run(0.5, inference)
        cached = run(0.5, inference, prefix_cached=True)
        assert cached.retrieval_s == base.retrieval_s
        assert cached.decode_s == base.decode_s
        assert cached.prefill_s < base.prefill_s

    def test_ttft_unchanged(self, inference):
        # First stride always prefills in full — caching can't cut TTFT.
        base = run(0.5, inference)
        cached = run(0.5, inference, prefix_cached=True)
        assert cached.ttft_s == pytest.approx(base.ttft_s)


class TestPipelining:
    def test_pipelined_not_slower(self, inference):
        base = run(0.5, inference)
        piped = run(0.5, inference, pipelined=True)
        assert piped.e2e_s <= base.e2e_s

    def test_full_overlap_when_retrieval_small(self, inference):
        result = run(0.001, inference, pipelined=True)
        # E2E ~ encode + first retrieval + all inference.
        inference_only = result.prefill_s + result.decode_s
        assert result.e2e_s == pytest.approx(
            result.encode_s + 0.001 + inference_only, rel=0.01
        )

    def test_retrieval_bound_when_retrieval_large(self, inference):
        result = run(100.0, inference, pipelined=True)
        n = result.config.n_strides
        # All but the last stride are gated by retrieval.
        assert result.e2e_s >= 100.0 * n

    def test_pipelining_helps_most_at_crossover(self, inference):
        # The Fig. 8 shape: speedup peaks where retrieval ~ inference block.
        speedups = []
        for retr in (0.01, 0.7, 100.0):
            base = run(retr, inference)
            piped = run(retr, inference, pipelined=True)
            speedups.append(base.e2e_s / piped.e2e_s)
        assert speedups[1] > speedups[0]
        assert speedups[1] > speedups[2]

    def test_energy_unaffected_by_pipelining(self, inference):
        base = run(0.7, inference)
        piped = run(0.7, inference, pipelined=True)
        assert piped.total_energy_j == pytest.approx(base.total_energy_j)


class TestEnergyAccounting:
    def test_cpu_energy_is_retrieval(self, inference):
        result = run(1.0, inference)
        assert result.cpu_energy_j == pytest.approx(result.config.n_strides * 100.0)

    def test_gpu_energy_positive(self, inference):
        assert run(1.0, inference).gpu_energy_j > 0

    def test_stage_seconds_keys(self, inference):
        stages = run(1.0, inference).stage_seconds
        assert set(stages) == {"encoding", "retrieval", "prefill", "decoding"}


class TestThroughput:
    def test_bottleneck_is_retrieval_when_large(self, inference):
        cfg = GenerationConfig()
        qps = steady_state_throughput_qps(10.0, inference, cfg)
        assert qps == pytest.approx(cfg.batch / 10.0)

    def test_bottleneck_is_inference_when_retrieval_hidden(self, inference):
        cfg = GenerationConfig()
        block = (
            inference.prefill(cfg.batch, cfg.input_tokens).latency_s
            + inference.decode(cfg.batch, cfg.stride).latency_s
        )
        qps = steady_state_throughput_qps(0.001, inference, cfg)
        assert qps == pytest.approx(cfg.batch / block)


class TestMeterIntegration:
    def test_meter_totals_match_result(self, inference):
        from repro.hardware.power import EnergyMeter

        meter = EnergyMeter()
        provider = constant_retrieval(RetrievalCost(latency_s=1.0, energy_j=150.0))
        result = simulate_generation(
            provider, inference, GenerationConfig(), meter=meter
        )
        assert meter.total_joules() == pytest.approx(result.total_energy_j, rel=1e-6)

    def test_meter_labels_cover_stages(self, inference):
        from repro.hardware.power import EnergyMeter

        meter = EnergyMeter()
        provider = constant_retrieval(RetrievalCost(latency_s=0.5, energy_j=50.0))
        simulate_generation(provider, inference, GenerationConfig(), meter=meter)
        by_label = meter.joules_by_label()
        assert set(by_label) == {"encoding", "retrieval", "prefill", "decoding"}
        by_device = meter.joules_by_device()
        assert by_device["cpu"] == pytest.approx(50.0 * 16)

    def test_zero_latency_retrieval_recorded_safely(self, inference):
        from repro.hardware.power import EnergyMeter

        meter = EnergyMeter()
        provider = constant_retrieval(RetrievalCost(latency_s=0.0, energy_j=0.0))
        simulate_generation(provider, inference, GenerationConfig(), meter=meter)
        assert meter.joules_by_label()["retrieval"] == 0.0
