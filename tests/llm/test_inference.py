"""Tests for the inference cost model."""

import pytest

from repro.hardware.gpu import A6000_ADA, L4
from repro.llm.inference import (
    ANCHOR_DECODE_STRIDE_LATENCY_S,
    ANCHOR_PREFILL_LATENCY_S,
    InferenceModel,
    effective_decode_interval,
)
from repro.llm.models import GEMMA2_9B, OPT_30B, PHI_1_5


@pytest.fixture()
def gemma():
    return InferenceModel()


class TestAnchors:
    def test_prefill_anchor(self, gemma):
        # Paper: 132 QPS prefill at batch 32, 512 input tokens.
        cost = gemma.prefill(32, 512)
        assert cost.latency_s == pytest.approx(ANCHOR_PREFILL_LATENCY_S)
        assert 32 / cost.latency_s == pytest.approx(132.0, rel=0.01)

    def test_prefill_energy_anchor(self, gemma):
        # Paper: 2.2 J per query during prefill.
        cost = gemma.prefill(32, 512)
        assert cost.energy_j / 32 == pytest.approx(2.2, rel=0.05)

    def test_decode_anchor(self, gemma):
        # Paper: 67 QPS per 16-token stride at batch 32.
        cost = gemma.decode(32, 16)
        assert 32 / cost.latency_s == pytest.approx(67.0, rel=0.01)


class TestScaling:
    def test_prefill_linear_in_tokens(self, gemma):
        short = gemma.prefill(32, 256).latency_s
        long = gemma.prefill(32, 1024).latency_s
        assert long == pytest.approx(4 * short, rel=0.05)

    def test_prefill_floor_for_tiny_inputs(self, gemma):
        # Kernel-launch floor: an 8x smaller input is not 8x faster.
        tiny = gemma.prefill(1, 16).latency_s
        assert tiny > ANCHOR_PREFILL_LATENCY_S * 0.1

    def test_decode_linear_in_tokens(self, gemma):
        one = gemma.decode(32, 16).latency_s
        two = gemma.decode(32, 32).latency_s
        assert two == pytest.approx(2 * one, rel=0.05)

    def test_decode_nearly_batch_independent(self, gemma):
        # Memory-bound decode: 4x batch costs far less than 4x latency.
        small = gemma.decode(32, 16).latency_s
        large = gemma.decode(128, 16).latency_s
        assert large < 2 * small

    def test_bigger_model_slower(self):
        phi = InferenceModel(model=PHI_1_5)
        opt = InferenceModel(model=OPT_30B)
        assert phi.prefill(32, 512).latency_s < opt.prefill(32, 512).latency_s
        assert phi.decode(32, 16).latency_s < opt.decode(32, 16).latency_s

    def test_l4_slower_than_a6000(self):
        a = InferenceModel(model=GEMMA2_9B, gpu=A6000_ADA)
        l = InferenceModel(model=GEMMA2_9B, gpu=L4)
        assert l.prefill(32, 512).latency_s > a.prefill(32, 512).latency_s


class TestTensorParallel:
    def test_opt_defaults_to_two_a6000(self):
        # Fig. 17's configuration rule.
        assert InferenceModel(model=OPT_30B, gpu=A6000_ADA).n_gpus == 2

    def test_gemma_defaults_to_two_l4(self):
        assert InferenceModel(model=GEMMA2_9B, gpu=L4).n_gpus == 2

    def test_underprovisioned_rejected(self):
        with pytest.raises(ValueError, match="needs >="):
            InferenceModel(model=OPT_30B, gpu=A6000_ADA, n_gpus=1)

    def test_extra_gpus_cut_latency_but_raise_power(self):
        one = InferenceModel(model=GEMMA2_9B, gpu=A6000_ADA, n_gpus=1)
        two = InferenceModel(model=GEMMA2_9B, gpu=A6000_ADA, n_gpus=2)
        assert two.prefill(32, 512).latency_s < one.prefill(32, 512).latency_s
        assert two.prefill(32, 512).power_w > one.prefill(32, 512).power_w

    def test_tensor_parallel_energy_inefficient_for_small_models(self):
        # The paper: adding GPUs to small models raises energy for little gain.
        one = InferenceModel(model=GEMMA2_9B, gpu=A6000_ADA, n_gpus=1)
        two = InferenceModel(model=GEMMA2_9B, gpu=A6000_ADA, n_gpus=2)
        assert two.prefill(32, 512).energy_j > one.prefill(32, 512).energy_j


class TestValidationAndHelpers:
    def test_rejects_bad_args(self, gemma):
        with pytest.raises(ValueError):
            gemma.prefill(0, 512)
        with pytest.raises(ValueError):
            gemma.decode(32, 0)

    def test_generation_latency_sums_stages(self, gemma):
        total = gemma.generation_latency(32, 512, 256)
        assert total == pytest.approx(
            gemma.prefill(32, 512).latency_s + gemma.decode(32, 256).latency_s
        )

    def test_effective_decode_interval(self, gemma):
        assert effective_decode_interval(gemma, 32, 16) == pytest.approx(
            ANCHOR_DECODE_STRIDE_LATENCY_S
        )
        with pytest.raises(ValueError):
            effective_decode_interval(gemma, 32, 0)
